"""Shared workload builders for the benchmark suite.

Each experiment file (``bench_*.py``) imports from here so that all experiments
run on the same family of synthetic workloads: the parametric star-HCQ of
:class:`repro.streams.generators.HCQWorkloadGenerator` plus the two CER
scenarios.  Keeping workload construction in one place also makes the numbers
recorded in EXPERIMENTS.md easy to regenerate.
"""

from __future__ import annotations

import random
from typing import List, Tuple as Tup

from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import PCEA
from repro.cq.query import ConjunctiveQuery
from repro.cq.schema import Tuple
from repro.engine.compiler import compile_pattern
from repro.engine.dsl import atom, conjunction, disjunction
from repro.streams.generators import HCQWorkloadGenerator


DEFAULT_ARMS = 3
DEFAULT_KEY_DOMAIN = 32


def star_workload(
    length: int,
    arms: int = DEFAULT_ARMS,
    key_domain: int = DEFAULT_KEY_DOMAIN,
    seed: int = 0,
) -> tuple[ConjunctiveQuery, List[Tuple]]:
    """A star HCQ and a materialised random stream for it."""
    generator = HCQWorkloadGenerator(arms=arms, key_domain=key_domain, seed=seed)
    return generator.query(), generator.stream(length).materialise()


def hot_star_workload(
    length: int,
    arms: int = 2,
    hot_fraction: float = 0.6,
    seed: int = 0,
) -> tuple[ConjunctiveQuery, List[Tuple]]:
    """A star workload with a skewed key so many outputs fire per position."""
    generator = HCQWorkloadGenerator(arms=arms, key_domain=64, seed=seed)
    return generator.query(), generator.hot_key_stream(length, hot_fraction).materialise()


PAYLOAD_DOMAIN = 1_000


def multi_star_workload(
    groups: int,
    length: int,
    arms: int = 2,
    key_domain: int = 32,
    selectivity: float = 1.0,
    seed: int = 0,
) -> Tup[PCEA, List[Tuple]]:
    """A multi-pattern PCEA (disjoint union of ``groups`` star patterns) + stream.

    Each group ``g`` is the star conjunction over its private relation
    alphabet ``G<g>R1 ... G<g>R<arms>``, so the compiled automaton has
    ``2·arms·groups`` transitions of which only one group's worth can fire on
    any tuple — the workload where the transition dispatch index matters and
    the seed engine's full per-tuple scan is pure overhead.

    ``selectivity < 1`` adds a local payload filter ``y < selectivity·domain``
    to every atom, the typical CER situation where most events fail their
    pattern's local predicate and transitions rarely fire.

    The stream draws a group, a relation within the group, a join key and a
    payload uniformly at random.
    """
    threshold = int(PAYLOAD_DOMAIN * selectivity)
    selective = selectivity < 1.0

    def make_atom(g: int, j: int):
        filters = [(f"y{j}", "<", threshold)] if selective else []
        return atom(f"G{g}R{j}", "x", f"y{j}", filters=filters)

    parts = [
        conjunction(*(make_atom(g, j) for j in range(1, arms + 1))) for g in range(groups)
    ]
    pattern = disjunction(*parts) if groups > 1 else parts[0]
    pcea = compile_pattern(pattern)
    rng = random.Random(seed)
    relations = [f"G{g}R{j}" for g in range(groups) for j in range(1, arms + 1)]
    stream = [
        Tuple(rng.choice(relations), (rng.randrange(key_domain), rng.randrange(PAYLOAD_DOMAIN)))
        for _ in range(length)
    ]
    return pcea, stream


def shared_star_queries(
    num_queries: int,
    length: int,
    arms: int = 3,
    groups: int = 4,
    key_domain: int = 32,
    selectivity: float = 0.2,
    seed: int = 0,
) -> Tup[List[PCEA], List[Tuple]]:
    """``num_queries`` star patterns clustered into ``groups`` relation alphabets.

    The production shape — many users registering variations of common
    patterns over a shared event stream — has two kinds of redundancy that
    one-engine-per-query pays for and the multi-query engine shares:

    * **cross-group irrelevance**: query ``q`` lives in group ``q % groups``
      with the private alphabet ``G<g>R1 ... G<g>R<arms>``; a tuple of one
      group's relation is irrelevant to every other group's queries, yet each
      independent engine still pays its full per-tuple overhead (call,
      eviction sweep, dispatch lookup) to find that out.  The merged index
      answers it with the one shared lookup.
    * **within-group structural overlap**: queries in the same group share the
      filtered arms ``R2 ... R<arms>`` (identical thresholds → structurally
      identical unary predicates, memoised once per tuple across the whole
      group) and differ in their private payload filter on ``R1``.

    ``selectivity`` is the fraction of events passing the arm filters; the
    stream draws a group, a relation, a join key and a payload uniformly.
    """
    groups = max(1, min(groups, num_queries))
    base_threshold = int(PAYLOAD_DOMAIN * selectivity)

    def build_query(q: int) -> PCEA:
        g = q % groups
        # Private filter threshold on arm 1 (structurally distinct per query);
        # arms 2.. share one threshold within the group (memoised across the
        # group's queries).
        parts = [atom(f"G{g}R1", "x", "y1", filters=[("y1", "<", base_threshold + q)])]
        parts.extend(
            atom(f"G{g}R{j}", "x", f"y{j}", filters=[(f"y{j}", "<", base_threshold)])
            for j in range(2, arms + 1)
        )
        return compile_pattern(conjunction(*parts))

    queries = [build_query(q) for q in range(num_queries)]
    rng = random.Random(seed)
    relations = [f"G{g}R{j}" for g in range(groups) for j in range(1, arms + 1)]
    stream = [
        Tuple(rng.choice(relations), (rng.randrange(key_domain), rng.randrange(PAYLOAD_DOMAIN)))
        for _ in range(length)
    ]
    return queries, stream


def relation_star_workload(
    groups: int,
    length: int,
    arms: int = 2,
    key_domain: int = 8,
    seed: int = 0,
) -> Tup[PCEA, List[Tuple]]:
    """Star patterns in the raw automaton model: relation-gated transitions.

    Each group ``g`` watches its private relations ``G<g>R1 .. G<g>R<arms>``:
    the first ``arms - 1`` relations start partial runs, the last one closes
    the star, joining every pending arm on attribute 0 (``ProjectionEquality``).
    Unary predicates are plain :class:`RelationPredicate`s, so once the
    dispatch index has routed a tuple, firing costs almost nothing beyond the
    data-structure operations themselves — this is the workload that isolates
    the enumeration-structure (``DS_w``) share of the update time, which the
    arena representation accelerates.

    The stream draws a relation, a join key and a payload uniformly.
    """
    from repro.core.pcea import PCEATransition
    from repro.core.predicates import ProjectionEquality, RelationPredicate

    states = set()
    transitions = []
    final = set()
    for g in range(groups):
        relations = [f"G{g}R{j}" for j in range(1, arms + 1)]
        closing = relations[-1]
        sources = set()
        binaries = {}
        for j, relation in enumerate(relations[:-1], start=1):
            state = ("q", g, j)
            states.add(state)
            sources.add(state)
            binaries[state] = ProjectionEquality({relation: (0,)}, {closing: (0,)})
            transitions.append(
                PCEATransition(
                    frozenset(),
                    RelationPredicate(relation),
                    {},
                    {f"g{g}a{j}"},
                    state,
                )
            )
        accept = ("f", g)
        states.add(accept)
        final.add(accept)
        transitions.append(
            PCEATransition(
                frozenset(sources),
                RelationPredicate(closing),
                binaries,
                {f"g{g}a{arms}"},
                accept,
            )
        )
    pcea = PCEA(states=states, transitions=transitions, final=final)
    rng = random.Random(seed)
    all_relations = [f"G{g}R{j}" for g in range(groups) for j in range(1, arms + 1)]
    stream = [
        Tuple(rng.choice(all_relations), (rng.randrange(key_domain), rng.randrange(PAYLOAD_DOMAIN)))
        for _ in range(length)
    ]
    return pcea, stream


def fanout_star_workload(
    groups: int,
    length: int,
    fan: int = 7,
    key_domain: int = 2,
    arm_fraction: float = 0.8,
    seed: int = 0,
) -> Tup[PCEA, List[Tuple]]:
    """Arm state consumed by ``fan`` closing transitions: store-heavy updates.

    Group ``g`` has one arm relation ``G<g>A`` whose runs are consumed by
    ``fan`` distinct closing relations ``G<g>C0 .. G<g>C<fan-1>`` (all joining
    on attribute 0), so every arm tuple is unioned into ``fan`` hash entries —
    the workload with the highest data-structure work per tuple relative to
    dispatch/predicate overhead, which is where the arena representation's
    cheap node allocation shows up most directly.  ``arm_fraction`` skews the
    stream toward arm tuples.
    """
    from repro.core.pcea import PCEATransition
    from repro.core.predicates import ProjectionEquality, RelationPredicate

    states = set()
    transitions = []
    final = set()
    for g in range(groups):
        arm_relation = f"G{g}A"
        state = ("q", g)
        states.add(state)
        transitions.append(
            PCEATransition(
                frozenset(), RelationPredicate(arm_relation), {}, {f"g{g}arm"}, state
            )
        )
        for m in range(fan):
            closing = f"G{g}C{m}"
            accept = ("f", g, m)
            states.add(accept)
            final.add(accept)
            transitions.append(
                PCEATransition(
                    frozenset({state}),
                    RelationPredicate(closing),
                    {state: ProjectionEquality({arm_relation: (0,)}, {closing: (0,)})},
                    {f"g{g}c{m}"},
                    accept,
                )
            )
    pcea = PCEA(states=states, transitions=transitions, final=final)
    rng = random.Random(seed)
    arm_relations = [f"G{g}A" for g in range(groups)]
    closing_relations = [f"G{g}C{m}" for g in range(groups) for m in range(fan)]
    stream = []
    for _ in range(length):
        if rng.random() < arm_fraction:
            relation = rng.choice(arm_relations)
        else:
            relation = rng.choice(closing_relations)
        stream.append(Tuple(relation, (rng.randrange(key_domain), rng.randrange(PAYLOAD_DOMAIN))))
    return pcea, stream


def union_storm_workload(
    groups: int,
    length: int,
    variants: int = 8,
    key_domain: int = 8,
    arm_fraction: float = 0.75,
    seed: int = 0,
) -> Tup[PCEA, List[Tuple]]:
    """``variants`` labelled readings of each arm tuple, all unioned into one state.

    Group ``g`` watches one arm relation ``G<g>A`` through ``variants``
    parallel transitions into the *same* pending state (distinct label sets —
    the alternative-interpretations pattern), plus one closing relation
    ``G<g>C`` joining the pending state on attribute 0.  Every arm tuple
    therefore fires ``variants`` extends whose nodes all land on one target
    state, and the consumer loop unions all of them into one run-index entry
    under a *single* key computation / hash lookup / expiry registration.
    That amortisation makes this the workload where the data-structure
    operations dominate the per-tuple update most completely — dispatch,
    predicate and hash-table overhead are paid once per tuple while ``DS_w``
    work is paid ``variants`` times — which is what the kernel-backend
    comparison (``bench_kernel_backends``) needs: the measured gap between
    backends is almost entirely the record-operation hot path itself.
    """
    from repro.core.pcea import PCEATransition
    from repro.core.predicates import ProjectionEquality, RelationPredicate

    states = set()
    transitions = []
    final = set()
    for g in range(groups):
        arm_relation = f"G{g}A"
        closing = f"G{g}C"
        state = ("q", g)
        accept = ("f", g)
        states.add(state)
        states.add(accept)
        final.add(accept)
        for k in range(variants):
            transitions.append(
                PCEATransition(
                    frozenset(), RelationPredicate(arm_relation), {}, {f"g{g}v{k}"}, state
                )
            )
        transitions.append(
            PCEATransition(
                frozenset({state}),
                RelationPredicate(closing),
                {state: ProjectionEquality({arm_relation: (0,)}, {closing: (0,)})},
                {f"g{g}close"},
                accept,
            )
        )
    pcea = PCEA(states=states, transitions=transitions, final=final)
    rng = random.Random(seed)
    stream = []
    for _ in range(length):
        g = rng.randrange(groups)
        relation = f"G{g}A" if rng.random() < arm_fraction else f"G{g}C"
        stream.append(Tuple(relation, (rng.randrange(key_domain), rng.randrange(PAYLOAD_DOMAIN))))
    return pcea, stream


def guarded_disjunction_workload(
    branches: int,
    length: int,
    hot_fraction: float = 0.8,
    hot_values: int = 2,
    seed: int = 0,
) -> Tup[PCEA, List[Tuple]]:
    """A disjunction of constant-guarded branches over one relation + skewed stream.

    Branch ``b`` matches ``E(t, y)`` with the local filter ``t == b`` — a
    highly selective constant guard.  Every ``E`` tuple is a relation-dispatch
    candidate for *all* ``branches`` transitions, but at most one guard can
    match, so the constant-guard index reduces the candidate fan-out from
    ``branches`` to ``≤ 1`` before any ``unary.holds`` runs.

    The stream is skewed: a ``hot_fraction`` of events carry one of
    ``hot_values`` hot type values (all within the branch range), the rest are
    uniform over the branch range — the workload where a full candidate scan
    wastes the most work per tuple.
    """
    pattern = disjunction(
        *(atom("E", "t", "y", filters=[("t", "==", b)]) for b in range(branches))
    )
    pcea = compile_pattern(pattern)
    rng = random.Random(seed)
    stream = []
    for _ in range(length):
        if rng.random() < hot_fraction:
            value = rng.randrange(min(hot_values, branches))
        else:
            value = rng.randrange(branches)
        stream.append(Tuple("E", (value, rng.randrange(PAYLOAD_DOMAIN))))
    return pcea, stream


def _guarded_pair_queries(num_queries: int, filter_selectivity: float) -> List[PCEA]:
    """``num_queries`` two-branch disjunctions over one relation ``E``.

    Query ``q`` is ``E(t, y)[t == q]  ∨  E(t, y)[y < threshold]`` — a private
    constant-guarded branch plus a *shared* unguarded filter branch
    (structurally identical across queries, so the merged index memoises it
    as one predicate group with ``num_queries`` members).  This is the shape
    where static dispatch pays the full ``O(num_queries)`` candidate walk on
    every ``E`` tuple while an adaptive hot-value plan collapses it to two
    group evaluations — the common scaffold of the drift/burst scenarios.
    """
    threshold = max(1, int(PAYLOAD_DOMAIN * filter_selectivity))
    return [
        compile_pattern(
            disjunction(
                atom("E", "t", "y", filters=[("t", "==", q)]),
                atom("E", "t", "y", filters=[("y", "<", threshold)]),
            )
        )
        for q in range(num_queries)
    ]


def drifting_guard_queries(
    num_queries: int,
    length: int,
    phases: int = 4,
    hot_fraction: float = 0.95,
    filter_selectivity: float = 0.02,
    seed: int = 0,
) -> Tup[List[PCEA], List[Tuple]]:
    """Guarded-pair queries + a stream whose hot guard value drifts mid-stream.

    The stream runs in ``phases`` equal segments; within a segment a
    ``hot_fraction`` of events carry that segment's hot ``t`` value (the rest
    are uniform over the query range), and the hot value jumps to a different
    query's guard at every segment boundary.  A static plan frozen for one
    segment's skew is wrong for the next — the scenario adaptive promotion
    (and decay-driven demotion) exists for.  Seeded and fully replayable.
    """
    queries = _guarded_pair_queries(num_queries, filter_selectivity)
    rng = random.Random(seed)
    phase_length = max(1, length // max(1, phases))
    stream: List[Tuple] = []
    for i in range(length):
        phase = i // phase_length
        hot = (phase * 7919) % num_queries  # deterministic jump per phase
        if rng.random() < hot_fraction:
            value = hot
        else:
            value = rng.randrange(num_queries)
        stream.append(Tuple("E", (value, rng.randrange(PAYLOAD_DOMAIN))))
    return queries, stream


def bursty_guard_queries(
    num_queries: int,
    length: int,
    burst_every: int = 2_000,
    burst_length: int = 500,
    hot_fraction: float = 0.95,
    filter_selectivity: float = 0.02,
    seed: int = 0,
) -> Tup[List[PCEA], List[Tuple]]:
    """Guarded-pair queries + a stream with a steady hot key and hot-key bursts.

    The baseline skew concentrates on guard value ``0``; every
    ``burst_every`` events a burst of ``burst_length`` events switches the
    hot value to another query's guard, then reverts.  Bursts are long
    enough to trigger re-promotion but short enough that a learner with no
    decay would thrash — the adversarial middle ground between stable skew
    and clean drift.  Seeded and fully replayable.
    """
    queries = _guarded_pair_queries(num_queries, filter_selectivity)
    rng = random.Random(seed)
    stream: List[Tuple] = []
    for i in range(length):
        cycle = i % burst_every
        burst = i // burst_every
        hot = 1 + (burst * 31) % (num_queries - 1) if cycle < burst_length else 0
        if rng.random() < hot_fraction:
            value = hot
        else:
            value = rng.randrange(num_queries)
        stream.append(Tuple("E", (value, rng.randrange(PAYLOAD_DOMAIN))))
    return queries, stream


def wildcard_mix_queries(
    num_queries: int,
    length: int,
    key_domain: int = DEFAULT_KEY_DOMAIN,
    seed: int = 0,
) -> Tup[List[PCEA], List[Tuple]]:
    """An adversarial wildcard-heavy query mix + a uniform stream.

    Half the queries are pure wildcards (``E(t, y)`` with no filter — every
    ``E`` tuple fires them), half carry a private constant guard.  Nothing
    here rewards adaptation: the wildcard group holds on every tuple, the
    uniform stream never concentrates on a guard value, and the per-tuple
    cost is dominated by firing/enumeration work identical under both
    dispatch modes.  This is the stable-workload scenario the ≤1.02x
    overhead contract is enforced on.  Seeded and fully replayable.
    """
    queries: List[PCEA] = []
    for q in range(num_queries):
        if q % 2 == 0:
            queries.append(compile_pattern(atom("E", "t", "y")))
        else:
            queries.append(
                compile_pattern(atom("E", "t", "y", filters=[("t", "==", q)]))
            )
    rng = random.Random(seed)
    stream = [
        Tuple("E", (rng.randrange(key_domain), rng.randrange(PAYLOAD_DOMAIN)))
        for _ in range(length)
    ]
    return queries, stream


def streaming_engine(
    query: ConjunctiveQuery, window: int, arena: bool = True
) -> StreamingEvaluator:
    return StreamingEvaluator(hcq_to_pcea(query), window=window, arena=arena)


def drain(engine, stream) -> int:
    """Process a whole stream, counting (but not storing) the outputs."""
    outputs = 0
    for tup in stream:
        outputs += len(engine.process(tup))
    return outputs


def update_only(engine: StreamingEvaluator, stream) -> None:
    """Run only the update phase of Algorithm 1 over the stream (no enumeration)."""
    for tup in stream:
        engine.update(tup)
