"""Experiment E4 — streaming PCEA vs. baseline engines.

Claim (implicit in the paper's motivation): maintaining a factorised
representation of the partial runs beats (a) re-evaluating the query over the
window at every tuple and (b) materialising every new match eagerly during the
update phase, with the gap widening as the window (and hence the number of
live partial matches) grows.  The crossover structure matters more than the
absolute numbers: for tiny windows the simpler baselines are competitive, for
large windows the streaming engine wins.
"""

import time

import pytest

from repro.baselines.delta_join import DeltaJoinEngine
from repro.baselines.naive import NaiveRecomputeEngine
from repro.bench.harness import format_table

from workloads import drain, star_workload, streaming_engine


STREAM_LENGTH = 1_200
WINDOWS = [16, 128, 1_024]


def _engine(kind, query, window):
    if kind == "streaming":
        return streaming_engine(query, window)
    if kind == "delta-join":
        return DeltaJoinEngine(query, window=window)
    if kind == "naive":
        return NaiveRecomputeEngine(query, window=window)
    raise ValueError(kind)


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("kind", ["streaming", "delta-join", "naive"])
def test_engine_throughput(benchmark, kind, window):
    """Total processing time (update + enumeration) for each engine and window."""
    query, stream = star_workload(STREAM_LENGTH)
    if kind == "naive" and window > 200:
        pytest.skip("naive re-evaluation is quadratic; skip large windows to keep the suite fast")

    def run():
        return drain(_engine(kind, query, window), stream)

    outputs = benchmark(run)
    assert outputs >= 0


def test_engines_agree_and_streaming_wins_at_large_windows(benchmark):
    """Shape check: identical outputs; streaming at least ties at w=16 and wins at w=1024."""
    query, stream = star_workload(STREAM_LENGTH)

    def sweep():
        table = {}
        for window in WINDOWS:
            row = {}
            for kind in ("streaming", "delta-join"):
                engine = _engine(kind, query, window)
                start = time.perf_counter()
                outputs = drain(engine, stream)
                row[kind] = (outputs, time.perf_counter() - start)
            table[window] = row
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for window, row in table.items():
        streaming_outputs, streaming_time = row["streaming"]
        delta_outputs, delta_time = row["delta-join"]
        assert streaming_outputs == delta_outputs, "engines disagree on the output count"
        rows.append(
            (window, streaming_outputs, f"{streaming_time * 1000:.1f} ms", f"{delta_time * 1000:.1f} ms")
        )
    print()
    print("E4: streaming vs delta-join (same outputs, total wall-clock)")
    print(format_table(["window", "outputs", "streaming", "delta-join"], rows))
    largest = WINDOWS[-1]
    streaming_time = table[largest]["streaming"][1]
    delta_time = table[largest]["delta-join"][1]
    assert streaming_time <= 1.5 * delta_time, (
        "at the largest window the streaming engine should not lose to delta-join: "
        f"{streaming_time:.3f}s vs {delta_time:.3f}s"
    )
