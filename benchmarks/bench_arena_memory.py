"""Benchmark — arena-backed ``DS_w``: memory boundedness and update speedup.

Two experiments, written to ``BENCH_arena_memory.json``:

* **enumeration-structure memory over a long stream** — both representations
  process the same hot-key stream.  The key domain is small enough that every
  join key recurs well inside the window (recurrence interval ``relations ×
  key_domain`` ≪ ``window``), so run-index entries stay hot forever and union
  trees accumulate history.
  The object structure retains every node reachable from a surviving hash
  entry — the heap condition hangs the entire expired history below the live
  tops, so reachable nodes grow linearly with the stream.  The arena releases
  expired slabs wholesale, so its live node count stays flat at ``O(window)``.
  The two engines run side by side over the full stream and their outputs are
  compared position by position (the differential guarantee the speedup claim
  rests on).
* **per-tuple update speedup** — workloads whose update cost is dominated by
  data-structure operations (``relation_star_workload``,
  ``fanout_star_workload``; both with ``|Δ| >= 32``): best-of-``repeats``
  update-only timing of the arena engine vs the identical engine with
  ``arena=False``, under :func:`~repro.bench.harness.gc_controlled` so the
  cyclic collector neither pays for the object version's allocations inside
  the timed region nor fires at arbitrary points.

Run as a script (``PYTHONPATH=src python benchmarks/bench_arena_memory.py``);
``--tiny`` shrinks every dimension for CI smoke runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import gc_controlled, write_benchmark_json
from repro.core.evaluation import StreamingEvaluator

from workloads import fanout_star_workload, relation_star_workload


def object_reachable_nodes(engine: StreamingEvaluator) -> int:
    """Nodes reachable from the surviving hash entries (object engine).

    This is what Python's GC cannot reclaim for the object representation:
    the heap condition keeps expired subtrees hanging below live union tops.
    Traversal is by ``id()`` so no recursive dataclass hashing happens.
    """
    seen = set()
    stack = [pair[0] for pair in engine._hash.values()]
    count = 0
    while stack:
        node = stack.pop()
        marker = id(node)
        if marker in seen:
            continue
        seen.add(marker)
        count += 1
        if node.uleft is not None:
            stack.append(node.uleft)
        if node.uright is not None:
            stack.append(node.uright)
        stack.extend(node.prod)
    return count


def memory_experiment(length: int, window: int, groups: int, key_domain: int, samples: int) -> Dict:
    pcea, stream = relation_star_workload(
        groups, length=length, arms=2, key_domain=key_domain
    )
    arena_engine = StreamingEvaluator(pcea, window=window, arena=True, collect_stats=False)
    object_engine = StreamingEvaluator(pcea, window=window, arena=False, collect_stats=False)
    sample_every = max(1, length // samples)
    arena_samples: List[List[int]] = []
    object_samples: List[List[int]] = []
    outputs_equal = True
    arena_process = arena_engine.process
    object_process = object_engine.process
    with gc_controlled():  # keep the payload's gc_enabled=False honest here too
        start = time.perf_counter()
        for index, tup in enumerate(stream):
            if arena_process(tup) != object_process(tup):
                outputs_equal = False
            if index % sample_every == 0 or index == length - 1:
                arena_samples.append([index, arena_engine.ds.live_node_count()])
                object_samples.append([index, object_reachable_nodes(object_engine)])
        elapsed = time.perf_counter() - start
    arena_values = [value for _, value in arena_samples]
    object_values = [value for _, value in object_samples]
    half = len(arena_values) // 2
    arena_flat = max(arena_values[half:]) <= 2 * max(arena_values[:half]) if half else True
    growth = object_values[-1] / object_values[1] if len(object_values) > 1 and object_values[1] else float("inf")
    stats = arena_engine.ds.memory_stats()
    result = {
        "stream_length": length,
        "window": window,
        "transitions": len(pcea.transitions),
        "key_domain": key_domain,
        "outputs_equal_full_stream": outputs_equal,
        "seconds_both_engines": elapsed,
        "arena_live_nodes_samples": arena_samples,
        "object_reachable_nodes_samples": object_samples,
        "arena_flat": arena_flat,
        "arena_peak_live_nodes": max(arena_values),
        "arena_slabs_final": stats["slabs"],
        "arena_released_slabs": stats["released_slabs"],
        "arena_released_nodes": stats["released_nodes"],
        "arena_nodes_created": stats["nodes_created"],
        "object_final_reachable_nodes": object_values[-1],
        "object_growth_ratio": growth,
        "object_nodes_created": object_engine.ds.nodes_created,
    }
    print(
        f"  n={length} window={window}: arena peak live={result['arena_peak_live_nodes']} "
        f"(flat={arena_flat}, {stats['released_slabs']} slabs released), "
        f"object reachable={object_values[-1]} (growth x{growth:.1f}), "
        f"outputs equal={outputs_equal}"
    )
    return result


def time_updates(engine: StreamingEvaluator, stream) -> float:
    update = engine.update
    start = time.perf_counter()
    for tup in stream:
        update(tup)
    return (time.perf_counter() - start) / len(stream)


def check_equivalence(pcea, stream, window: int) -> bool:
    fast = StreamingEvaluator(pcea, window=window, arena=True)
    oracle = StreamingEvaluator(pcea, window=window, arena=False)
    return all(fast.process(tup) == oracle.process(tup) for tup in stream)


def speedup_experiment(length: int, window: int, repeats: int) -> List[Dict]:
    workloads = [
        (
            "relation_star",
            *relation_star_workload(16, length=length, arms=2, key_domain=2),
        ),
        (
            "fanout_star",
            *fanout_star_workload(4, length=length, fan=7, key_domain=2, arm_fraction=0.8),
        ),
    ]
    rows: List[Dict] = []
    for name, pcea, stream in workloads:
        best_arena = best_object = float("inf")
        with gc_controlled():
            for _ in range(repeats):
                arena_engine = StreamingEvaluator(
                    pcea, window=window, arena=True, collect_stats=False
                )
                object_engine = StreamingEvaluator(
                    pcea, window=window, arena=False, collect_stats=False
                )
                best_arena = min(best_arena, time_updates(arena_engine, stream))
                best_object = min(best_object, time_updates(object_engine, stream))
        equal = check_equivalence(pcea, stream, window)
        rows.append(
            {
                "workload": name,
                "transitions": len(pcea.transitions),
                "stream_length": len(stream),
                "window": window,
                "arena_us_per_tuple": best_arena * 1e6,
                "object_us_per_tuple": best_object * 1e6,
                "speedup": best_object / best_arena if best_arena else float("inf"),
                "nodes_per_tuple": object_engine.ds.nodes_created / len(stream),
                "outputs_equal": equal,
            }
        )
        print(
            f"  {name:<14s} |Δ|={rows[-1]['transitions']:<3d} "
            f"arena={rows[-1]['arena_us_per_tuple']:6.2f}µs  "
            f"object={rows[-1]['object_us_per_tuple']:6.2f}µs  "
            f"speedup={rows[-1]['speedup']:.2f}x  equal={equal}"
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI smoke mode (small workloads)")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_arena_memory.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        mem_len, mem_window, mem_kd, mem_samples = 20_000, 256, 2, 10
        speed_len, speed_window, repeats = 3_000, 512, 2
    else:
        mem_len, mem_window, mem_kd, mem_samples = 1_000_000, 2048, 4, 10
        speed_len, speed_window, repeats = 20_000, 1024, 9

    print(f"enumeration-structure memory over a long stream (n={mem_len}, window={mem_window})")
    memory = memory_experiment(mem_len, mem_window, groups=16, key_domain=mem_kd, samples=mem_samples)
    print(f"per-tuple update speedup, gc-controlled (n={speed_len}, window={speed_window})")
    speedups = speedup_experiment(speed_len, speed_window, repeats)

    payload = {
        "benchmark": "arena_memory",
        "tiny": args.tiny,
        "python": sys.version.split()[0],
        "gc_enabled": False,  # timed sections run under gc_controlled()
        "memory_bounded_enumeration_structure": memory,
        "update_speedup": speedups,
        "summary": {
            "arena_live_nodes_flat": memory["arena_flat"],
            "arena_peak_live_nodes": memory["arena_peak_live_nodes"],
            "object_growth_ratio": memory["object_growth_ratio"],
            "outputs_equal_full_stream": memory["outputs_equal_full_stream"],
            "max_speedup": max(row["speedup"] for row in speedups),
            "min_speedup": min(row["speedup"] for row in speedups),
            "all_speedup_outputs_equal": all(row["outputs_equal"] for row in speedups),
        },
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")
    summary = payload["summary"]
    print(
        f"arena flat: {summary['arena_live_nodes_flat']} "
        f"(peak {summary['arena_peak_live_nodes']} live nodes vs object growth "
        f"x{summary['object_growth_ratio']:.1f}); speedups "
        f"{summary['min_speedup']:.2f}-{summary['max_speedup']:.2f}x; "
        f"outputs equal: {summary['outputs_equal_full_stream']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
