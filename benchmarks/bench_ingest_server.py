"""Benchmark — the network ingest server under concurrent clients.

One experiment, written to ``BENCH_ingest_server.json``:

* **concurrent serving** — ``--clients`` (≥ 8) ingest clients push a
  grouped-star workload over TCP into one :class:`IngestServer` driving a
  shared ``MultiQueryEngine``, while a collector client subscribes to every
  query.  Two framings are measured over the same per-client streams:

  - ``batched`` — clients frame ``--frame`` tuples per ingest message and
    the server coalesces across connections up to ``--max-batch``;
  - ``tuple_at_a_time`` — one tuple per frame, ``max_batch=1`` (no
    coalescing), the naive request/response shape.

Reported per row: sustained tuples/sec over the whole run (first send to
last ack, all clients concurrent) and the end-to-end ack latency
distribution (send → ack round trip per frame under a bounded pipeline;
the ack is a match barrier, so this bounds match delivery too).  The
headline ``summary.batched_speedup_vs_tuple_at_a_time`` must be ≥ 2× in
the full run — that is the adaptive coalescer's reason to exist.

Every run is digest-verified: the global interleaved tuple order is
reconstructed from the acks' ``(base_position, count)`` assignments and
replayed through a direct in-process engine; the collector's served
matches must be bit-identical (``summary.outputs_identical_all_runs``).

Run as a script (``PYTHONPATH=src python benchmarks/bench_ingest_server.py``);
``--tiny`` shrinks dimensions for CI smoke runs (and relaxes the 2× floor,
which is meaningless at smoke sizes).
"""

from __future__ import annotations

import argparse
import hashlib
import os
import random
import sys
import threading
import time
from typing import Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import gc_controlled, peak_rss_bytes, summarize, write_benchmark_json
from repro.cq.schema import Tuple
from repro.multi import MultiQueryEngine
from repro.net import IngestClient, ServerThread


def make_workload(groups: int, clients: int, per_client: int, key_domain: int, seed: int):
    """Star query strings per relation group + one stream slice per client."""
    queries = [
        f"Q{g}(x, y) <- G{g}T(x), G{g}S(x, y), G{g}R(x, y)" for g in range(groups)
    ]
    rng = random.Random(seed)
    streams: List[List[Tuple]] = []
    for _ in range(clients):
        slice_: List[Tuple] = []
        for _ in range(per_client):
            g = rng.randrange(groups)
            relation = rng.choice(("T", "S", "R"))
            if relation == "T":
                slice_.append(Tuple(f"G{g}T", (rng.randrange(key_domain),)))
            else:
                slice_.append(
                    Tuple(
                        f"G{g}{relation}",
                        (rng.randrange(key_domain), rng.randrange(key_domain)),
                    )
                )
        streams.append(slice_)
    return queries, streams


def digest_outputs(per_tuple_outputs) -> str:
    """position|qid|sorted(vals) folded in stream order (the repo idiom)."""
    digest = hashlib.sha256()
    for position, outputs in enumerate(per_tuple_outputs):
        for qid in sorted(outputs):
            valuations = outputs[qid]
            if valuations:
                digest.update(
                    f"{position}|{qid}|{sorted(map(str, valuations))}".encode()
                )
    return digest.hexdigest()


def digest_matches(matches) -> str:
    """The same digest from a collector's ``{handle: [(pos, vals)]}`` view."""
    flat = []
    for qid, batches in matches.items():
        for position, valuations in batches:
            if valuations:
                flat.append((position, qid, sorted(map(str, valuations))))
    digest = hashlib.sha256()
    for position, qid, rendered in sorted(flat):
        digest.update(f"{position}|{qid}|{rendered}".encode())
    return digest.hexdigest()


def direct_run(queries: List[str], interleaved: List[Tuple], window: int):
    """The ground truth: the reconstructed order through an in-process engine."""
    engine = MultiQueryEngine(collect_stats=False)
    for query in queries:
        engine.register(query, window=window)
    began = time.perf_counter()
    outputs = engine.process_many(interleaved)
    wall = time.perf_counter() - began
    return digest_outputs(outputs), wall


def _pump(
    host: str,
    port: int,
    stream: List[Tuple],
    frame_size: int,
    pipeline: int,
    acks_out: List,
    latencies_out: List[float],
    errors: List,
) -> None:
    """One ingest client: bounded-pipeline pushes, per-frame ack RTTs."""
    try:
        with IngestClient(host, port) as client:
            sent: Dict[int, float] = {}
            outstanding: List[int] = []
            frame_index = 0
            for start in range(0, len(stream), frame_size):
                if len(outstanding) >= pipeline:
                    seq = outstanding.pop(0)
                    base, count = client.wait_ack(seq)
                    latencies_out.append(time.perf_counter() - sent.pop(seq))
                    acks_out.append((base, count, seq))
                chunk = stream[start : start + frame_size]
                seq = client.ingest(chunk, seq=frame_index)
                sent[seq] = time.perf_counter()
                outstanding.append(seq)
                frame_index += 1
            for seq in outstanding:
                base, count = client.wait_ack(seq)
                latencies_out.append(time.perf_counter() - sent.pop(seq))
                acks_out.append((base, count, seq))
    except Exception as exc:  # pragma: no cover - surfaced by the caller
        errors.append(exc)


def run_serving(
    label: str,
    queries: List[str],
    streams: List[List[Tuple]],
    window: int,
    frame_size: int,
    max_batch: int,
    pipeline: int,
) -> Dict:
    engine = MultiQueryEngine(collect_stats=False)
    total = sum(len(s) for s in streams)
    with ServerThread(engine, max_batch=max_batch) as st:
        collector = IngestClient(st.host, st.port)
        for index, query in enumerate(queries):
            collector.subscribe(query, window, name=f"q{index}")
        acks_per_client: List[List] = [[] for _ in streams]
        latencies_per_client: List[List[float]] = [[] for _ in streams]
        errors: List = []
        threads = [
            threading.Thread(
                target=_pump,
                args=(
                    st.host,
                    st.port,
                    stream,
                    frame_size,
                    pipeline,
                    acks_per_client[index],
                    latencies_per_client[index],
                    errors,
                ),
            )
            for index, stream in enumerate(streams)
        ]
        with gc_controlled():
            began = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - began
        if errors:
            raise RuntimeError(f"ingest client failed: {errors[0]!r}")
        # Every ingester saw its final ack, so every match frame is already
        # ordered before this ping in the collector's outbox.
        collector.ping()
        served_digest = digest_matches(collector.matches)
        collector.close()
        observed = st.server.observe()

    # Rebuild the exact interleave the server committed to, from the acks.
    interleaved: List = [None] * total
    for index, acks in enumerate(acks_per_client):
        for base, count, frame_index in acks:
            chunk = streams[index][frame_index * frame_size : frame_index * frame_size + count]
            interleaved[base : base + count] = chunk
    if None in interleaved:
        raise RuntimeError("ack reconstruction left holes — positions lost")

    latencies = [l for per_client in latencies_per_client for l in per_client]
    row = {
        "mode": label,
        "clients": len(streams),
        "frame_size": frame_size,
        "max_batch": max_batch,
        "pipeline": pipeline,
        "tuples": total,
        "wall_seconds": wall,
        "tuples_per_s": total / wall,
        "ack_latency_s": summarize(latencies),
        "batches": observed["batches"],
        "mean_coalesced_batch": total / observed["batches"] if observed["batches"] else 0.0,
        "peak_queue_depth": observed["peak_queue_depth"],
        "peak_outbox": observed["peak_outbox"],
        "match_frames_out": observed["match_frames_out"],
        "served_digest": served_digest,
    }
    print(
        f"  {label:<16s} {row['tuples_per_s']:9.1f} tup/s  "
        f"p99-ack={row['ack_latency_s']['p99'] * 1e3:7.2f}ms  "
        f"batches={observed['batches']}  "
        f"mean-batch={row['mean_coalesced_batch']:6.1f}"
    )
    return row, interleaved


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke dimensions")
    parser.add_argument("--clients", type=int, default=8, help="concurrent ingest clients")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_ingest_server.json"),
    )
    args = parser.parse_args()
    if args.tiny:
        groups, per_client, window, key_domain = 2, 120, 16, 4
        frame_size, max_batch, pipeline = 16, 128, 4
    else:
        groups, per_client, window, key_domain = 4, 3000, 64, 5
        frame_size, max_batch, pipeline = 128, 512, 8

    queries, streams = make_workload(groups, args.clients, per_client, key_domain, seed=13)
    total = sum(len(s) for s in streams)
    print(
        f"workload: {len(queries)} star queries, {args.clients} clients × "
        f"{per_client} tuples ({total} total), window={window}"
    )

    batched, interleaved_b = run_serving(
        "batched", queries, streams, window, frame_size, max_batch, pipeline
    )
    naive, interleaved_n = run_serving(
        "tuple_at_a_time", queries, streams, window, 1, 1, pipeline
    )

    # Ground truth both runs against their own committed interleave.
    identical = True
    for row, interleaved in ((batched, interleaved_b), (naive, interleaved_n)):
        expected, direct_wall = direct_run(queries, interleaved, window)
        row["direct_digest"] = expected
        row["direct_wall_seconds"] = direct_wall
        match = row["served_digest"] == expected
        row["outputs_identical"] = match
        identical = identical and match
        if not match:
            print(
                f"  OUTPUT MISMATCH ({row['mode']}) — results are invalid",
                file=sys.stderr,
            )

    speedup = batched["tuples_per_s"] / naive["tuples_per_s"]
    print(f"  batched speedup over tuple-at-a-time = {speedup:.2f}x")

    summary = {
        "clients": args.clients,
        "queries": len(queries),
        "stream_length": total,
        "window": window,
        "sustained_tuples_per_s": batched["tuples_per_s"],
        "p99_ack_latency_s": batched["ack_latency_s"]["p99"],
        "mean_coalesced_batch": batched["mean_coalesced_batch"],
        "batched_speedup_vs_tuple_at_a_time": speedup,
        "outputs_identical_all_runs": identical,
        "serving_overhead_vs_direct": (
            batched["wall_seconds"] / batched["direct_wall_seconds"]
            if batched["direct_wall_seconds"]
            else 0.0
        ),
    }
    payload = {
        "benchmark": "ingest_server",
        "description": (
            "Concurrent TCP clients pushing a grouped-star workload into one "
            "IngestServer (shared MultiQueryEngine) with a collector "
            "subscribed to every query; sustained throughput and per-frame "
            "ack round-trip latency for coalesced batches vs one-tuple "
            "frames, digest-verified against a direct in-process replay of "
            "the ack-reconstructed interleaved order."
        ),
        "workload": {
            "groups": groups,
            "clients": args.clients,
            "per_client_tuples": per_client,
            "key_domain": key_domain,
            "window": window,
            "frame_size": frame_size,
            "max_batch": max_batch,
            "pipeline": pipeline,
        },
        "rows": [batched, naive],
        "summary": summary,
        "gc_enabled": False,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")

    if not identical:
        sys.exit(1)
    if not args.tiny and speedup < 2.0:
        print(
            f"FLOOR VIOLATION: batched speedup {speedup:.2f}x < 2.0x",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
