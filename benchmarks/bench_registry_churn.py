"""Benchmark — registration churn: incremental merged-index patching.

``MultiQueryEngine`` used to reconstruct the whole merged dispatch index on
every register/unregister — O(total registered transitions) per change, which
caps how fast a production registry serving millions of users can absorb
subscription churn.  With incremental patching
(:meth:`~repro.multi.merged_index.MergedDispatchIndex.add_query` /
``remove_query``) a change touches only the affected ``(relation, guard)``
buckets and the interned-key tables.

Two experiments, written to ``BENCH_registry_churn.json``:

* **churn latency vs registry size** — mean wall-clock of one
  register+unregister pair against an engine holding K queries
  (``workloads.shared_star_queries`` shapes), K swept geometrically, for the
  patched engine (``incremental=True``, the default) and the full-rebuild
  ablation (``incremental=False``).  The headline number: at K=1024 the
  patched path must be **≥10×** faster per pair.
* **patch-vs-rebuild equivalence** — after every mutation of a churn
  sequence, the patched index's :meth:`signature` must equal a from-scratch
  rebuild over the surviving queries, and engine outputs on a probe stream
  must match a fresh full-rebuild engine (recorded as ``verified`` in the
  payload; the same invariant runs in ``tests/test_runtime.py``).

Run as a script (``PYTHONPATH=src python benchmarks/bench_registry_churn.py``);
``--tiny`` shrinks every dimension for CI smoke runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import format_table, write_benchmark_json
from repro.multi import MergedDispatchIndex, MultiQueryEngine

from workloads import shared_star_queries


WINDOW = 64


def build_engine(queries, incremental: bool) -> MultiQueryEngine:
    engine = MultiQueryEngine(incremental=incremental)
    for pcea in queries:
        engine.register(pcea, window=WINDOW)
    return engine


def time_churn_pairs(engine: MultiQueryEngine, churn_query, pairs: int) -> float:
    """Mean seconds for one register+unregister pair against ``engine``."""
    start = time.perf_counter()
    for _ in range(pairs):
        handle = engine.register(churn_query, window=WINDOW)
        engine.unregister(handle)
    return (time.perf_counter() - start) / pairs


def measure_latency(sizes: List[int], pairs: int, repeats: int):
    """Per-size churn latency for the patched and full-rebuild engines."""
    rows = []
    for size in sizes:
        # size+1 queries: the extra one is the churn subject, so the registry
        # always holds exactly ``size`` queries while a pair is in flight.
        queries, _ = shared_star_queries(size + 1, length=1, arms=3, groups=8)
        resident, churn_query = queries[:size], queries[size]
        per_mode: Dict[str, float] = {}
        for label, incremental in (("patched", True), ("rebuild", False)):
            engine = build_engine(resident, incremental)
            best = min(
                time_churn_pairs(engine, churn_query, pairs) for _ in range(repeats)
            )
            per_mode[label] = best
        rows.append(
            {
                "queries": size,
                "patched_pair_us": per_mode["patched"] * 1e6,
                "rebuild_pair_us": per_mode["rebuild"] * 1e6,
                "speedup": per_mode["rebuild"] / per_mode["patched"],
            }
        )
    return rows


def verify_equivalence(size: int, churn_steps: int) -> bool:
    """Signature + output equivalence of the patched index under churn."""
    import random

    queries, stream = shared_star_queries(size + churn_steps, length=400, arms=3, groups=4)
    rng = random.Random(0)
    patched = build_engine(queries[:size], incremental=True)
    rebuilt = build_engine(queries[:size], incremental=False)
    live = list(zip(patched.handles(), rebuilt.handles()))
    spare = list(queries[size:])
    for index, tup in enumerate(stream):
        if index % 25 == 0 and spare:
            if live and rng.random() < 0.5:
                patched_handle, rebuilt_handle = live.pop(rng.randrange(len(live)))
                patched.unregister(patched_handle)
                rebuilt.unregister(rebuilt_handle)
            else:
                query = spare.pop()
                live.append(
                    (
                        patched.register(query, window=WINDOW),
                        rebuilt.register(query, window=WINDOW),
                    )
                )
            # The tentpole invariant: the patched index is structurally
            # identical to a from-scratch rebuild after *every* mutation.
            lanes = [patched._lanes[qid] for qid in sorted(patched._lanes)]
            scratch = MergedDispatchIndex([(lane, lane.dispatch) for lane in lanes])
            if patched._merged.signature() != scratch.signature():
                return False
        patched_outputs = patched.process(tup)
        rebuilt_outputs = rebuilt.process(tup)
        for patched_handle, rebuilt_handle in live:
            left = sorted(map(str, patched_outputs.get(patched_handle.id, [])))
            right = sorted(map(str, rebuilt_outputs.get(rebuilt_handle.id, [])))
            if left != right:
                return False
    return True


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke dimensions")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_registry_churn.json"),
    )
    args = parser.parse_args()

    if args.tiny:
        sizes, pairs, repeats, verify_size, churn_steps = [16, 64], 8, 2, 8, 4
    else:
        sizes, pairs, repeats, verify_size, churn_steps = [64, 256, 1024], 32, 3, 32, 12

    print("# registration churn: patched vs full-rebuild merged index")
    rows = measure_latency(sizes, pairs, repeats)
    print(
        format_table(
            ["queries", "patched µs/pair", "rebuild µs/pair", "speedup"],
            [
                [
                    row["queries"],
                    f"{row['patched_pair_us']:.1f}",
                    f"{row['rebuild_pair_us']:.1f}",
                    f"{row['speedup']:.1f}x",
                ]
                for row in rows
            ],
        )
    )

    print("# verifying patched index == from-scratch rebuild under churn ...")
    verified = verify_equivalence(verify_size, churn_steps)
    print(f"# verified={verified}")

    top = rows[-1]
    payload = {
        "benchmark": "registry_churn",
        "description": (
            "register+unregister latency against a registry of K queries: "
            "incremental merged-index patching vs full rebuild; outputs and "
            "index structure verified identical to a from-scratch rebuild "
            "after every mutation"
        ),
        "window": WINDOW,
        "pairs_per_measurement": pairs,
        "repeats": repeats,
        "series": rows,
        "verified_identical_to_rebuild": verified,
        "summary": {
            "max_queries": top["queries"],
            "patched_pair_us_at_max": top["patched_pair_us"],
            "rebuild_pair_us_at_max": top["rebuild_pair_us"],
            "speedup_at_max": top["speedup"],
            "meets_10x_target": top["speedup"] >= 10.0,
        },
    }
    write_benchmark_json(args.output, payload)
    print(f"# wrote {args.output}")
    if not verified:
        sys.exit(1)


if __name__ == "__main__":
    main()
