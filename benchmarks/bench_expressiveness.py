"""Experiment E7 — expressiveness separations (Propositions 3.4, Theorems 4.1/4.2).

Three qualitative results are regenerated as measurable facts:

* **PCEA ⊋ CCEA** (Prop. 3.4): on streams where the conjunctive pattern's
  events arrive out of order, the chain engine misses matches that the PCEA
  engine reports; on ordered streams they agree.
* **HCQ → PCEA** (Thm. 4.1): for hierarchical queries the translated automaton
  reports exactly the matches of the CQ semantics (counted here over a random
  stream).
* **Non-hierarchical acyclic CQ are rejected** (Thm. 4.2): the construction
  refuses them, while the baseline engines can still evaluate them — the class
  boundary of the paper is visible in the API.
"""

import pytest

from repro.baselines.ccea_engine import CCEAStreamingEngine
from repro.baselines.delta_join import DeltaJoinEngine
from repro.bench.harness import format_table
from repro.core.ccea import CCEA, CCEATransition
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.predicates import ProjectionEquality, RelationPredicate
from repro.cq.hierarchical import NotHierarchicalError, is_hierarchical
from repro.cq.acyclic import is_acyclic
from repro.cq.query import Atom, ConjunctiveQuery, Variable
from repro.streams.generators import StockStreamGenerator

from workloads import drain


X, Y, Z = Variable("x"), Variable("y"), Variable("z")
HIERARCHICAL_QUERY = ConjunctiveQuery(
    [X, Y, Z], [Atom("News", (X,)), Atom("Buy", (X, Y)), Atom("Sell", (X, Z))], name="HQ"
)
NON_HIERARCHICAL_QUERY = ConjunctiveQuery(
    [X, Y], [Atom("News", (X,)), Atom("Buy", (X, Y)), Atom("Deal", (Y,))], name="NHQ"
)


def chain_ccea_for_scenario() -> CCEA:
    """News before Buy before Sell, correlated on the symbol (a CCEA / chain pattern)."""
    return CCEA(
        states={"q0", "q1", "q2"},
        initial={"q0": (RelationPredicate("News"), {0})},
        transitions=[
            CCEATransition(
                "q0", RelationPredicate("Buy"), ProjectionEquality({"News": (0,)}, {"Buy": (0,)}), {1}, "q1"
            ),
            CCEATransition(
                "q1", RelationPredicate("Sell"), ProjectionEquality({"Buy": (0,)}, {"Sell": (0,)}), {2}, "q2"
            ),
        ],
        final={"q2"},
    )


def scenario_stream(length: int = 800):
    """The conjunctive counterpart of the chain pattern: same correlation (the
    symbol ``x``), but no ordering constraint — so its match set is a superset
    of the chain automaton's on every stream."""
    generator = StockStreamGenerator(symbols=6, news_probability=0.2, seed=13)
    return HIERARCHICAL_QUERY, generator.stream(length).materialise()


def test_pcea_finds_strictly_more_matches_than_ccea(benchmark):
    query, stream = scenario_stream()
    window = 60

    def run():
        pcea_total = drain(StreamingEvaluator(hcq_to_pcea(query), window=window), stream)
        ccea_total = drain(CCEAStreamingEngine(chain_ccea_for_scenario(), window=window), stream)
        return pcea_total, ccea_total

    pcea_total, ccea_total = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("E7a: matches on an out-of-order stream (window 60)")
    print(format_table(["engine", "matches"], [("PCEA (conjunction)", pcea_total), ("CCEA (chain)", ccea_total)]))
    assert ccea_total < pcea_total, "the chain automaton must miss out-of-order matches"
    assert ccea_total > 0


def test_hcq_translation_matches_cq_semantics(benchmark):
    query, stream = scenario_stream(400)
    window = 40

    def run():
        streaming = drain(StreamingEvaluator(hcq_to_pcea(query), window=window), stream)
        reference = drain(DeltaJoinEngine(query, window=window), stream)
        return streaming, reference

    streaming, reference = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"E7b: PCEA translation vs CQ semantics — {streaming} matches each")
    assert streaming == reference


def test_non_hierarchical_queries_are_rejected(benchmark):
    def run():
        rejected = False
        try:
            hcq_to_pcea(NON_HIERARCHICAL_QUERY)
        except NotHierarchicalError:
            rejected = True
        return rejected

    rejected = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("E7c: acyclic-but-not-hierarchical query rejected by the construction:", rejected)
    assert is_acyclic(NON_HIERARCHICAL_QUERY)
    assert not is_hierarchical(NON_HIERARCHICAL_QUERY)
    assert rejected


@pytest.mark.parametrize("engine_kind", ["pcea", "ccea"])
def test_engine_throughput_on_scenario(benchmark, engine_kind):
    query, stream = scenario_stream()
    window = 60
    if engine_kind == "pcea":
        factory = lambda: StreamingEvaluator(hcq_to_pcea(query), window=window)  # noqa: E731
    else:
        factory = lambda: CCEAStreamingEngine(chain_ccea_for_scenario(), window=window)  # noqa: E731
    benchmark(lambda: drain(factory(), stream))
