"""Benchmark — transition dispatch index, hash eviction, lean enumeration.

Three experiments, written to ``BENCH_dispatch_index.json``:

* **update time vs |Δ|** — a multi-pattern automaton (disjoint union of star
  patterns over private relation alphabets) where any tuple can fire only one
  group's transitions.  The *seed-mode* engine (``indexed=False``, no
  eviction, unconditional statistics counting — exactly the seed evaluator's
  per-tuple behaviour) scans all ``|Δ|`` transitions twice per tuple; the
  indexed engine only visits the candidates, so its per-tuple update time
  should stay flat as ``|Δ|`` grows.
* **update time vs stream length** — fixed automaton, growing stream; both
  engines should be flat per tuple (Theorem 5.1), this guards the indexed
  engine against history effects.
* **hash-table size over a long stream** — 50k tuples with a window two
  orders of magnitude smaller; with expiry-driven eviction the table is
  bounded by the active window, without it it grows linearly with the stream.

Run as a script (``PYTHONPATH=src python benchmarks/bench_dispatch_index.py``);
``--tiny`` shrinks every dimension for CI smoke runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import (
    collect_engine_counters,
    measure_memory_profile,
    write_benchmark_json,
)
from repro.core.evaluation import StreamingEvaluator

from workloads import multi_star_workload


def indexed_engine(pcea, window: int) -> StreamingEvaluator:
    """The engine this PR builds: dispatch index + eviction, counters off."""
    return StreamingEvaluator(pcea, window=window, collect_stats=False)


def seed_mode_engine(pcea, window: int) -> StreamingEvaluator:
    """The seed evaluator's per-tuple behaviour: full transition scans, no
    hash eviction, unconditional statistics counting."""
    return StreamingEvaluator(pcea, window=window, indexed=False, evict=False, collect_stats=True)


def time_updates(engine: StreamingEvaluator, stream) -> float:
    """Mean seconds per tuple for the update phase (enumeration excluded)."""
    update = engine.update
    start = time.perf_counter()
    for tup in stream:
        update(tup)
    return (time.perf_counter() - start) / len(stream)


def check_equivalence(pcea, stream, window: int) -> bool:
    """Indexed and seed-mode engines must produce identical outputs per position."""
    fast = indexed_engine(pcea, window)
    seed = seed_mode_engine(pcea, window)
    for tup in stream:
        if set(fast.process(tup)) != set(seed.process(tup)):
            return False
    return True


SELECTIVITY = 0.2  # fraction of events passing their pattern's local filter


def sweep_transitions(groups_list: List[int], length: int, window: int) -> List[Dict]:
    rows: List[Dict] = []
    for groups in groups_list:
        pcea, stream = multi_star_workload(groups, length=length, selectivity=SELECTIVITY)
        info = pcea.dispatch_index().describe()
        fast = indexed_engine(pcea, window)
        seed = seed_mode_engine(pcea, window)
        fast_per_tuple = time_updates(fast, stream)
        seed_per_tuple = time_updates(seed, stream)
        rows.append(
            {
                "groups": groups,
                "transitions": len(pcea.transitions),
                "mean_candidates_per_tuple": info["mean_candidates"],
                "indexed_us_per_tuple": fast_per_tuple * 1e6,
                "seed_us_per_tuple": seed_per_tuple * 1e6,
                "speedup": seed_per_tuple / fast_per_tuple if fast_per_tuple else float("inf"),
                "outputs_equal": check_equivalence(pcea, stream, window),
            }
        )
        print(
            f"  |Δ|={rows[-1]['transitions']:<4d} indexed={rows[-1]['indexed_us_per_tuple']:8.2f}µs  "
            f"seed={rows[-1]['seed_us_per_tuple']:8.2f}µs  speedup={rows[-1]['speedup']:5.2f}x"
        )
    return rows


def sweep_stream_length(lengths: List[int], groups: int, window: int) -> List[Dict]:
    rows: List[Dict] = []
    for length in lengths:
        pcea, stream = multi_star_workload(groups, length=length, selectivity=SELECTIVITY)
        fast_per_tuple = time_updates(indexed_engine(pcea, window), stream)
        seed_per_tuple = time_updates(seed_mode_engine(pcea, window), stream)
        rows.append(
            {
                "length": length,
                "indexed_us_per_tuple": fast_per_tuple * 1e6,
                "seed_us_per_tuple": seed_per_tuple * 1e6,
            }
        )
        print(
            f"  n={length:<7d} indexed={rows[-1]['indexed_us_per_tuple']:8.2f}µs  "
            f"seed={rows[-1]['seed_us_per_tuple']:8.2f}µs"
        )
    return rows


def memory_experiment(length: int, window: int, groups: int, sample_every: int) -> Dict:
    # A wide key domain mimics high-cardinality join keys (user ids, order
    # ids): almost every tuple registers a fresh hash entry, so without
    # eviction the table grows linearly with the stream.
    pcea, stream = multi_star_workload(groups, length=length, key_domain=1_000_000)
    results: Dict[str, Dict] = {}
    for name, evict in (("evicting", True), ("unbounded", False)):
        engine = StreamingEvaluator(pcea, window=window, evict=evict, collect_stats=False)
        series = measure_memory_profile(engine, stream, sample_every=sample_every)
        samples = [[position, size] for position, size in series.as_rows()]
        sizes = series.values
        half = len(sizes) // 2
        results[name] = {
            "samples": samples,
            "final_hash_table_size": engine.hash_table_size(),
            "max_hash_table_size": max(sizes),
            "evicted": engine.evicted,
            # Flat = the second half of the stream never needs more entries
            # than the engine had already reached in the first half.
            "flat": max(sizes[half:]) <= max(sizes[:half]) if half else True,
            "counters": collect_engine_counters(engine),
        }
        print(
            f"  {name:<10s} final={results[name]['final_hash_table_size']:<8d} "
            f"max={int(results[name]['max_hash_table_size']):<8d} "
            f"evicted={results[name]['evicted']:<8d} flat={results[name]['flat']}"
        )
    return {
        "stream_length": length,
        "window": window,
        "transitions": len(pcea.transitions),
        "engines": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI smoke mode (small workloads)")
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_dispatch_index.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        groups_list, sweep_len, window = [2, 4], 300, 64
        lengths, fixed_groups = [300, 600], 4
        mem_len, mem_window, sample_every = 2_000, 64, 100
    else:
        groups_list, sweep_len, window = [2, 4, 8, 16, 32], 4_000, 256
        lengths, fixed_groups = [2_000, 4_000, 8_000, 16_000], 8
        mem_len, mem_window, sample_every = 50_000, 256, 1_000

    print(f"update time vs |Δ| (stream={sweep_len}, window={window})")
    transitions_rows = sweep_transitions(groups_list, sweep_len, window)
    print(f"update time vs stream length (groups={fixed_groups}, window={window})")
    length_rows = sweep_stream_length(lengths, fixed_groups, window)
    print(f"hash-table size over a long stream (n={mem_len}, window={mem_window})")
    memory = memory_experiment(mem_len, mem_window, groups=4, sample_every=sample_every)

    payload = {
        "benchmark": "dispatch_index",
        "tiny": args.tiny,
        "selectivity": SELECTIVITY,
        "python": sys.version.split()[0],
        "update_time_vs_transitions": transitions_rows,
        "update_time_vs_stream_length": length_rows,
        "memory_bounded_hash_table": memory,
        "summary": {
            "max_speedup": max(row["speedup"] for row in transitions_rows),
            "speedup_at_32_transitions": next(
                (row["speedup"] for row in transitions_rows if row["transitions"] >= 32),
                None,
            ),
            "all_outputs_equal": all(row["outputs_equal"] for row in transitions_rows),
            "evicting_hash_table_flat": memory["engines"]["evicting"]["flat"],
            "unbounded_hash_table_flat": memory["engines"]["unbounded"]["flat"],
        },
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")
    summary = payload["summary"]
    print(
        f"max speedup {summary['max_speedup']:.2f}x; outputs equal: {summary['all_outputs_equal']}; "
        f"evicting table flat: {summary['evicting_hash_table_flat']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
