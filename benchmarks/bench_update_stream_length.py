"""Experiment E2 — update time vs. stream length / output history (Theorem 5.1).

Claim: the update time of Algorithm 1 "does not depend on the number of outputs
seen so far".  The experiment processes progressively longer prefixes of the
same stream (with a fixed window) and reports the mean per-tuple update time of
each *quarter* of the stream: the last quarter should not be slower than the
first even though the engine has accumulated a large output history.
"""

import statistics

import pytest

from repro.bench.harness import format_table, measure_update_times

from workloads import star_workload, streaming_engine, update_only


LENGTHS = [1_000, 2_000, 4_000, 8_000]
WINDOW = 512


@pytest.mark.parametrize("arena", [True, False], ids=["arena", "object"])
@pytest.mark.parametrize("length", LENGTHS)
def test_total_update_time_scales_linearly(benchmark, length, arena):
    """Total update time should scale linearly with the stream length.

    Parametrised over the enumeration-structure representation so the
    arena-vs-object update-time delta is visible in the benchmark table.
    """
    query, stream = star_workload(length)

    def run():
        engine = streaming_engine(query, WINDOW, arena=arena)
        update_only(engine, stream)

    benchmark(run)


@pytest.mark.parametrize("arena", [True, False], ids=["arena", "object"])
def test_per_tuple_update_time_is_stable_over_time(benchmark, arena):
    """Per-tuple update time in the last quarter ≈ first quarter (no history effect)."""
    query, stream = star_workload(6_000)

    def run():
        engine = streaming_engine(query, WINDOW, arena=arena)
        return measure_update_times(engine, stream, gc_control=True)

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    quarter = len(times) // 4
    quarters = [statistics.fmean(times[i * quarter : (i + 1) * quarter]) for i in range(4)]
    rows = [(f"Q{i + 1}", f"{mean * 1e6:.2f} µs") for i, mean in enumerate(quarters)]
    print()
    print("E2: per-tuple update time per stream quarter (fixed window)")
    print(format_table(["quarter", "mean update"], rows))
    assert quarters[3] <= 3 * quarters[0], f"update time degraded over the stream: {quarters}"
