"""Experiment E8 — ablation of the persistent balanced union structure (Prop. 5.3).

The design choice under test: Algorithm 1 stores, per hash key, the *union* of
all partial runs with that key.  Proposition 5.3 implements the union as a
persistent, direction-bit balanced tree with expired-subtree pruning, giving
``O(log(k·w))`` per call.  The ablation replaces it with a naive linked-list
union (still correct, no balancing, no pruning) and measures the difference in
update time and in the depth of the union structures, on a workload where many
runs share the same join key.
"""

import statistics
import time

import pytest

from repro.bench.harness import format_table
from repro.core.datastructure import DataStructure, LinkedListUnionStructure
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea

from workloads import hot_star_workload


WINDOW = 300
STREAM_LENGTH = 2_000


def build_engine(query, structure_kind: str) -> StreamingEvaluator:
    structure = (
        DataStructure(WINDOW) if structure_kind == "balanced" else LinkedListUnionStructure(WINDOW)
    )
    return StreamingEvaluator(hcq_to_pcea(query), window=WINDOW, datastructure=structure)


@pytest.mark.parametrize("structure_kind", ["balanced", "linked-list"])
def test_update_throughput_per_structure(benchmark, structure_kind):
    query, stream = hot_star_workload(STREAM_LENGTH, hot_fraction=0.7)

    def run():
        engine = build_engine(query, structure_kind)
        for tup in stream:
            engine.update(tup)
        return engine

    engine = benchmark(run)
    assert engine.ds.union_calls > 0


def test_ablation_outputs_identical_and_costs_reported(benchmark):
    query, stream = hot_star_workload(STREAM_LENGTH, hot_fraction=0.7)

    def run():
        results = {}
        for kind in ("balanced", "linked-list"):
            engine = build_engine(query, kind)
            start = time.perf_counter()
            outputs = 0
            for tup in stream:
                outputs += sum(1 for _ in engine.process(tup))
            elapsed = time.perf_counter() - start
            results[kind] = {
                "outputs": outputs,
                "seconds": elapsed,
                "union_copies": engine.ds.union_copies,
                "nodes": engine.ds.nodes_created,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            kind,
            data["outputs"],
            f"{data['seconds'] * 1000:.1f} ms",
            data["union_copies"],
            data["nodes"],
        )
        for kind, data in results.items()
    ]
    print()
    print("E8: balanced persistent unions vs linked-list unions (same workload)")
    print(format_table(["structure", "outputs", "total time", "union copies", "nodes created"], rows))
    assert results["balanced"]["outputs"] == results["linked-list"]["outputs"]
    # The balanced structure must not be slower than the naive one by more than noise.
    assert results["balanced"]["seconds"] <= 1.5 * results["linked-list"]["seconds"]
