"""Experiment E5 — size of the Theorem 4.1 construction.

Claim: for a hierarchical CQ without self joins the PCEA ``P_Q`` has size
quadratic in ``|Q|``; with self joins the construction is exponential in the
worst case (the blow-up comes from annotating tuples with self-join groups).
The experiment builds the automaton for growing star queries (no self joins),
growing telescope queries (deep q-trees) and growing single-relation stars
(every atom shares the relation name) and reports ``|P_Q|``.
"""

import pytest

from repro.bench.harness import format_table
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.streams.generators import deep_hcq, self_join_hcq, star_hcq


def query_size(query) -> int:
    return sum(1 + atom.arity for atom in query.atoms)


@pytest.mark.parametrize("arms", [2, 4, 8, 12])
def test_construction_time_star(benchmark, arms):
    query = star_hcq(arms)
    pcea = benchmark(lambda: hcq_to_pcea(query))
    assert pcea.uses_only_equality_predicates()


@pytest.mark.parametrize("copies", [2, 3, 4, 5])
def test_construction_time_self_join(benchmark, copies):
    query = self_join_hcq(copies)
    pcea = benchmark(lambda: hcq_to_pcea(query))
    assert pcea.labels == set(range(copies))


def test_size_growth_quadratic_vs_exponential(benchmark):
    def sweep():
        star_rows = []
        for arms in range(2, 11):
            query = star_hcq(arms)
            star_rows.append((arms, query_size(query), hcq_to_pcea(query).size()))
        deep_rows = []
        for depth in range(2, 9):
            query = deep_hcq(depth)
            deep_rows.append((depth, query_size(query), hcq_to_pcea(query).size()))
        self_join_rows = []
        for copies in range(1, 6):
            query = self_join_hcq(copies)
            self_join_rows.append((copies, query_size(query), hcq_to_pcea(query).size()))
        return star_rows, deep_rows, self_join_rows

    star_rows, deep_rows, self_join_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("E5a: |P_Q| for star HCQ (no self joins) — quadratic")
    print(format_table(["arms", "|Q|", "|P_Q|"], star_rows))
    print("E5b: |P_Q| for telescope HCQ (no self joins) — quadratic")
    print(format_table(["depth", "|Q|", "|P_Q|"], deep_rows))
    print("E5c: |P_Q| for single-relation star (all atoms share a relation) — exponential")
    print(format_table(["copies", "|Q|", "|P_Q|"], self_join_rows))

    # Quadratic bound for the no-self-join constructions.
    for _, qsize, psize in star_rows + deep_rows:
        assert psize <= 4 * qsize * qsize + 10

    # Exponential growth for the self-join construction: consecutive ratios increase.
    sizes = [psize for _, _, psize in self_join_rows]
    ratios = [later / earlier for earlier, later in zip(sizes, sizes[1:])]
    assert ratios[-1] > 2.0, f"self-join construction should blow up, ratios={ratios}"
    assert sizes[-1] > 50 * sizes[0]
