"""Experiment E1 — update time vs. window size (Theorem 5.1).

Claim: the update phase of Algorithm 1 costs ``O(|P|·|t| + |P|·log|P| + |P|·log w)``
per tuple, i.e. for a fixed automaton the dependency on the window size ``w``
is *logarithmic*.  The experiment fixes a star HCQ and a stream and sweeps the
window over three orders of magnitude: per-tuple update time should stay
nearly flat (each doubling of ``w`` may add at most a small constant), in sharp
contrast with the naive baseline whose window content grows linearly.
"""

import statistics

import pytest

from repro.bench.harness import format_table, measure_update_times, summarize
from repro.baselines.naive import NaiveRecomputeEngine

from workloads import star_workload, streaming_engine, update_only


STREAM_LENGTH = 3_000
WINDOWS = [64, 256, 1_024, 4_096, 16_384]


@pytest.mark.parametrize("window", WINDOWS)
def test_update_time_per_window(benchmark, window):
    """Wall-clock time of the update phase over the whole stream, per window size."""
    query, stream = star_workload(STREAM_LENGTH)

    def run():
        engine = streaming_engine(query, window)
        update_only(engine, stream)
        return engine

    engine = benchmark(run)
    # Sanity: the run really performed work proportional to the stream.
    assert engine.stats.transitions_scanned >= STREAM_LENGTH


def test_update_time_growth_is_sublinear_in_window(benchmark):
    """The shape check: mean per-tuple update time grows far slower than the window."""
    query, stream = star_workload(STREAM_LENGTH)

    def sweep():
        means = []
        for window in WINDOWS:
            engine = streaming_engine(query, window)
            times = measure_update_times(engine, stream, warmup=100)
            means.append(statistics.fmean(times))
        return means

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (window, f"{mean * 1e6:.2f} µs", f"{means[i] / means[0]:.2f}x")
        for i, (window, mean) in enumerate(zip(WINDOWS, means))
    ]
    print()
    print("E1: streaming update time vs window")
    print(format_table(["window", "mean update", "vs smallest"], rows))
    # The window grows 256x; a logarithmic dependency should keep the growth
    # of the mean update time small.  Allow a generous factor for noise.
    assert means[-1] <= 6 * means[0], f"update time grew too fast: {means}"


def test_naive_baseline_grows_with_window(benchmark):
    """Contrast: the naive engine's per-tuple cost grows roughly linearly with w."""
    query, stream = star_workload(600)

    def sweep():
        means = []
        for window in (32, 128, 512):
            engine = NaiveRecomputeEngine(query, window=window)
            times = measure_update_times(engine, stream, warmup=50)
            means.append(statistics.fmean(times))
        return means

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("E1 (baseline): naive per-tuple cost for windows 32/128/512:",
          [f"{m * 1e6:.1f} µs" for m in means])
    assert means[-1] > 2 * means[0], "the naive baseline should degrade with the window"
