"""Benchmark — kernel backends: object oracle vs python columnar vs native.

Three experiments, written to ``BENCH_kernel_backends.json``:

* **per-tuple update time, three-way** — best-of-``repeats`` update-only
  timing (gc-controlled) of the same streams through the object-graph oracle
  (``arena=False``), the columnar arena on the pure-python kernel
  (``kernel="python"``) and the columnar arena on the native C kernel
  (``kernel="native"``), on three workloads: the relation-gated star
  (``relation_star``, join-dominated), the hot-key fan-out star
  (``fanout_star``, store-heavy) and the union storm (``union_storm``,
  the DS-dominated headline — ``variants`` extends + unions per arm tuple
  amortised over a single consumer-loop key/hash/registration, so the
  measured gap is almost entirely the stride-5 record hot path the kernels
  implement).
* **enumeration delay** — per-output enumeration time on the union storm for
  all three backends (``measure_enumeration_delays``), since the native walk
  also replaces the python enumeration loop.
* **output / state verification** — a separate full-``process`` run of every
  backend over one stream, comparing outputs position by position (all
  backends), machine-independent counters (nodes created, union calls/copies,
  evictions — all backends) and the engine snapshot (python vs native, which
  must be *bit-identical*: snapshots are representation-independent, the
  cross-backend restore guarantee ``tests/test_kernel.py`` pins down).

When the native extension is not built (no C toolchain at install time) the
native column is skipped and ``summary.native_available`` records it; the
object/python comparison still runs.

Run as a script (``PYTHONPATH=src python benchmarks/bench_kernel_backends.py``);
``--tiny`` shrinks every dimension for CI smoke runs.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, List, Optional

_HERE = os.path.dirname(os.path.abspath(__file__))
_SRC = os.path.join(os.path.dirname(_HERE), "src")
for path in (_HERE, _SRC):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.bench.harness import (
    gc_controlled,
    measure_enumeration_delays,
    peak_rss_bytes,
    write_benchmark_json,
)
from repro.core.evaluation import StreamingEvaluator
from repro.core.kernel import backend_info, native_available

from workloads import fanout_star_workload, relation_star_workload, union_storm_workload


def make_engine(backend: str, pcea, window: int) -> StreamingEvaluator:
    if backend == "object":
        return StreamingEvaluator(pcea, window=window, arena=False, collect_stats=False)
    return StreamingEvaluator(pcea, window=window, kernel=backend, collect_stats=False)


def backends() -> List[str]:
    return ["object", "python", "native"] if native_available() else ["object", "python"]


def make_workloads(length: int) -> List:
    return [
        ("relation_star", *relation_star_workload(8, length=length, arms=3, key_domain=4)),
        ("fanout_star", *fanout_star_workload(4, length=length, fan=7, key_domain=2, arm_fraction=0.8)),
        ("union_storm", *union_storm_workload(4, length=length, variants=8, key_domain=8, arm_fraction=0.75)),
    ]


def time_updates(engine: StreamingEvaluator, stream) -> float:
    update = engine.update
    start = time.perf_counter()
    for tup in stream:
        update(tup)
    return (time.perf_counter() - start) / len(stream)


def speed_experiment(length: int, window: int, repeats: int) -> List[Dict]:
    """Per-tuple update time for every backend on every workload."""
    rows: List[Dict] = []
    for name, pcea, stream in make_workloads(length):
        best: Dict[str, float] = {backend: float("inf") for backend in backends()}
        with gc_controlled():
            for _ in range(repeats):
                for backend in best:
                    engine = make_engine(backend, pcea, window)
                    best[backend] = min(best[backend], time_updates(engine, stream))
        row: Dict[str, object] = {
            "workload": name,
            "transitions": len(pcea.transitions),
            "stream_length": len(stream),
            "window": window,
        }
        for backend, seconds in best.items():
            row[f"{backend}_us_per_tuple"] = seconds * 1e6
        row["python_speedup_vs_object"] = best["object"] / best["python"]
        if "native" in best:
            row["native_speedup_vs_object"] = best["object"] / best["native"]
            row["native_speedup_vs_python"] = best["python"] / best["native"]
        rows.append(row)
        cells = "  ".join(
            f"{backend}={best[backend] * 1e6:6.2f}µs" for backend in best
        )
        ratio = (
            f"obj/nat={row['native_speedup_vs_object']:.2f}x"
            if "native" in best
            else f"obj/py={row['python_speedup_vs_object']:.2f}x"
        )
        print(f"  {name:<14s} {cells}  {ratio}")
    return rows


def enumeration_experiment(length: int, window: int) -> List[Dict]:
    """Per-output enumeration delay on the union storm, per backend."""
    _, pcea, stream = make_workloads(length)[2]
    rows: List[Dict] = []
    for backend in backends():
        engine = make_engine(backend, pcea, window)
        with gc_controlled():
            measurements = measure_enumeration_delays(engine, stream)
        outputs = sum(size for size, _ in measurements)
        seconds = sum(elapsed for _, elapsed in measurements)
        rows.append(
            {
                "backend": backend,
                "outputs": outputs,
                "total_seconds": seconds,
                "us_per_output": seconds / outputs * 1e6 if outputs else 0.0,
            }
        )
        print(
            f"  enumerate[{backend:<6s}] {outputs} outputs, "
            f"{rows[-1]['us_per_output']:.3f}µs/output"
        )
    return rows


def verification_experiment(length: int, window: int) -> Dict:
    """Full-``process`` equality of outputs, counters and snapshots.

    The timing rows above are only comparable if the backends compute the
    same thing; this pins it down inside the benchmark itself rather than
    deferring to the test suite.
    """
    results: Dict[str, Dict] = {}
    for name, pcea, stream in make_workloads(length):
        engines = {backend: make_engine(backend, pcea, window) for backend in backends()}
        outputs_equal = True
        for tup in stream:
            produced = [engine.process(tup) for engine in engines.values()]
            if any(one != produced[0] for one in produced[1:]):
                outputs_equal = False
        reference = engines["object"]
        counters_equal = all(
            engine.evicted == reference.evicted
            and engine.hash_table_size() == reference.hash_table_size()
            and engine.ds.nodes_created == reference.ds.nodes_created
            and engine.ds.union_copies == reference.ds.union_copies
            for backend, engine in engines.items()
            if backend != "object"
        )
        snapshots_identical: Optional[bool] = None
        if "native" in engines:
            snapshots_identical = (
                engines["native"].snapshot() == engines["python"].snapshot()
            )
        results[name] = {
            "stream_length": len(stream),
            "window": window,
            "outputs_equal_full_stream": outputs_equal,
            "counters_equal": counters_equal,
            "python_native_snapshots_identical": snapshots_identical,
        }
        print(
            f"  verify[{name:<14s}] outputs equal={outputs_equal}, "
            f"counters equal={counters_equal}, snapshots identical={snapshots_identical}"
        )
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tiny", action="store_true", help="CI smoke dimensions")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(_HERE), "BENCH_kernel_backends.json"),
    )
    args = parser.parse_args()
    if args.tiny:
        length, window, verify_length, repeats = 4_000, 128, 2_000, 2
    else:
        length, window, verify_length, repeats = 40_000, 512, 12_000, 5
    if args.repeats is not None:
        repeats = args.repeats

    info = backend_info()
    print(f"backends: {backends()} (native_available={info['native_available']})")
    print("per-tuple update time:")
    speed_rows = speed_experiment(length, window, repeats)
    print("enumeration delay (union_storm):")
    enum_rows = enumeration_experiment(length, window)
    print("verification:")
    verification = verification_experiment(verify_length, window)

    storm = next(row for row in speed_rows if row["workload"] == "union_storm")
    summary: Dict[str, object] = {
        "native_available": info["native_available"],
        "python_speedup_vs_object_union_storm": storm["python_speedup_vs_object"],
        "outputs_equal_all_workloads": all(
            entry["outputs_equal_full_stream"] for entry in verification.values()
        ),
        "counters_equal_all_workloads": all(
            entry["counters_equal"] for entry in verification.values()
        ),
    }
    if info["native_available"]:
        summary["native_speedup_vs_object_union_storm"] = storm["native_speedup_vs_object"]
        summary["native_speedup_vs_python_union_storm"] = storm["native_speedup_vs_python"]
        summary["python_native_snapshots_identical_all_workloads"] = all(
            entry["python_native_snapshots_identical"] for entry in verification.values()
        )
    payload = {
        "benchmark": "kernel_backends",
        "description": (
            "Per-tuple update time and enumeration delay of the stride-5 record "
            "hot path: object-graph oracle vs columnar arena on the python and "
            "native kernels, with in-benchmark output/counter/snapshot verification."
        ),
        "backend_info": {
            "native_available": info["native_available"],
            "backends": info["backends"],
        },
        "gc_enabled": False,
        "peak_rss_bytes": peak_rss_bytes(),
        "update_time": speed_rows,
        "enumeration_delay": enum_rows,
        "verification": verification,
        "summary": summary,
    }
    write_benchmark_json(args.output, payload)
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
