"""Experiment E6 — PFA determinization (Proposition 3.2).

Claim: every PFA with ``n`` states has an equivalent DFA with at most ``2^n``
states.  The experiment determinizes two families:

* the "k-th symbol from the end is *a*" family, whose minimal DFA genuinely
  needs ``2^k`` states — showing the bound is tight in practice; and
* random PFA, whose reachable subset automata stay well below the bound.
"""

import random

import pytest

from repro.automata.pfa import PFA, determinize_pfa
from repro.bench.harness import format_table


def kth_from_end_pfa(k: int) -> PFA:
    """A PFA (in fact an NFA) for "the k-th symbol from the end is 'a'"."""
    states = list(range(k + 1))
    transitions = {(frozenset({0}), symbol, 0) for symbol in "ab"}
    transitions.add((frozenset({0}), "a", 1))
    for i in range(1, k):
        for symbol in "ab":
            transitions.add((frozenset({i}), symbol, i + 1))
    return PFA(states, {"a", "b"}, transitions, {0}, {k})


def random_pfa(states: int, transitions: int, seed: int) -> PFA:
    rng = random.Random(seed)
    state_list = list(range(states))
    transition_set = set()
    for _ in range(transitions):
        size = rng.randint(1, min(3, states))
        sources = frozenset(rng.sample(state_list, size))
        transition_set.add((sources, rng.choice("ab"), rng.choice(state_list)))
    return PFA(state_list, {"a", "b"}, transition_set, {0}, {states - 1})


@pytest.mark.parametrize("k", [4, 8, 12])
def test_determinization_time_worst_case_family(benchmark, k):
    pfa = kth_from_end_pfa(k)
    dfa = benchmark(lambda: determinize_pfa(pfa))
    assert len(dfa.states) <= 2 ** len(pfa.states)


@pytest.mark.parametrize("states", [6, 10, 14])
def test_determinization_time_random_pfa(benchmark, states):
    pfa = random_pfa(states, transitions=3 * states, seed=states)
    dfa = benchmark(lambda: determinize_pfa(pfa))
    assert len(dfa.states) <= 2 ** states


def test_state_blowup_table(benchmark):
    def sweep():
        worst_rows = []
        for k in range(2, 11):
            pfa = kth_from_end_pfa(k)
            dfa = determinize_pfa(pfa)
            worst_rows.append((k, len(pfa.states), len(dfa.states), 2 ** len(pfa.states)))
        random_rows = []
        for states in (4, 8, 12, 16):
            pfa = random_pfa(states, transitions=3 * states, seed=states)
            dfa = determinize_pfa(pfa)
            random_rows.append((states, len(pfa.states), len(dfa.states), 2 ** states))
        return worst_rows, random_rows

    worst_rows, random_rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("E6a: determinization of the 'k-th symbol from the end' family (tight 2^k)")
    print(format_table(["k", "|Q| PFA", "|Q| DFA", "2^|Q|"], worst_rows))
    print("E6b: determinization of random PFA (reachable subsets only)")
    print(format_table(["n", "|Q| PFA", "|Q| DFA", "2^n"], random_rows))

    for k, n_pfa, n_dfa, bound in worst_rows:
        assert n_dfa <= bound
        # The family needs exactly 2^k reachable subset states.
        assert n_dfa >= 2 ** k
    for _, n_pfa, n_dfa, bound in random_rows:
        assert n_dfa <= bound
