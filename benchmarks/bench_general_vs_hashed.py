"""Experiment E10 — hashing on equality keys vs. scanning live runs.

The algorithmic heart of Theorem 5.1 is that, for equality predicates, partial
runs can be indexed by their join key, making the update phase independent of
the number of live runs.  The extension evaluator
(:class:`repro.extensions.general_evaluation.GeneralStreamingEvaluator`)
supports arbitrary predicates by scanning the live runs instead.  Both produce
identical outputs on equality-only automata; this experiment measures the
update-cost gap as the window (and hence the number of live runs) grows.
"""

import time

import pytest

from repro.bench.harness import format_table
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.extensions.general_evaluation import GeneralStreamingEvaluator

from workloads import star_workload


STREAM_LENGTH = 1_500
WINDOWS = [32, 128, 512]


@pytest.mark.parametrize("window", WINDOWS)
@pytest.mark.parametrize("kind", ["hashed", "scanning"])
def test_update_throughput(benchmark, kind, window):
    query, stream = star_workload(STREAM_LENGTH)
    pcea = hcq_to_pcea(query)

    def run():
        engine = (
            StreamingEvaluator(pcea, window=window)
            if kind == "hashed"
            else GeneralStreamingEvaluator(pcea, window=window)
        )
        for tup in stream:
            engine.update(tup)
        return engine

    benchmark(run)


def test_gap_grows_with_window(benchmark):
    query, stream = star_workload(STREAM_LENGTH)
    pcea = hcq_to_pcea(query)

    def sweep():
        rows = []
        for window in WINDOWS:
            timings = {}
            outputs = {}
            for kind in ("hashed", "scanning"):
                engine = (
                    StreamingEvaluator(pcea, window=window)
                    if kind == "hashed"
                    else GeneralStreamingEvaluator(pcea, window=window)
                )
                start = time.perf_counter()
                total = 0
                for tup in stream:
                    total += len(engine.process(tup))
                timings[kind] = time.perf_counter() - start
                outputs[kind] = total
            assert outputs["hashed"] == outputs["scanning"]
            rows.append(
                (
                    window,
                    outputs["hashed"],
                    f"{timings['hashed'] * 1000:.1f} ms",
                    f"{timings['scanning'] * 1000:.1f} ms",
                    f"{timings['scanning'] / timings['hashed']:.2f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("E10: equality-key hashing (Algorithm 1) vs live-run scanning (general evaluator)")
    print(format_table(["window", "outputs", "hashed", "scanning", "slowdown"], rows))
    # The scanning evaluator's relative cost must grow with the window.
    slowdowns = [float(row[-1][:-1]) for row in rows]
    assert slowdowns[-1] >= slowdowns[0]
