"""Experiment E3 — output-linear enumeration delay (Theorem 5.2).

Claim: once the update phase is done, the new outputs at a position can be
enumerated in time proportional to their total size, regardless of how many
partial runs are stored.  The experiment uses a skewed ("hot key") workload so
that different positions fire very different numbers of outputs, and checks
that enumeration time divided by output size stays within a narrow band while
the number of outputs per position varies by orders of magnitude.
"""

import statistics

import pytest

from repro.bench.harness import format_table, measure_enumeration_delays

from workloads import hot_star_workload, streaming_engine


WINDOW = 400


def _bucket(measurements):
    """Group (output size, elapsed) pairs into size buckets and average the per-unit cost."""
    buckets = {}
    for size, elapsed in measurements:
        key = 1
        while key < size:
            key *= 4
        buckets.setdefault(key, []).append(elapsed / size)
    return {key: statistics.fmean(values) for key, values in sorted(buckets.items())}


@pytest.mark.parametrize("arena", [True, False], ids=["arena", "object"])
def test_enumeration_is_output_linear(benchmark, arena):
    query, stream = hot_star_workload(2_500, hot_fraction=0.5)

    def run():
        engine = streaming_engine(query, WINDOW, arena=arena)
        return measure_enumeration_delays(engine, stream)

    measurements = benchmark.pedantic(run, rounds=1, iterations=1)
    assert measurements, "the workload must produce outputs"
    per_unit = _bucket(measurements)
    rows = [
        (f"≤{size}", f"{cost * 1e6:.3f} µs / unit")
        for size, cost in per_unit.items()
    ]
    print()
    print("E3: enumeration cost per output unit, bucketed by output size")
    print(format_table(["output size bucket", "cost per (label,position) pair"], rows))
    costs = list(per_unit.values())
    # Output-linear delay: the per-unit cost of the largest bucket is within a
    # constant factor of the smallest bucket (it usually *decreases* thanks to
    # amortised generator overhead).
    assert max(costs) <= 12 * min(costs), f"per-unit enumeration cost not flat: {per_unit}"


@pytest.mark.parametrize("hot_fraction", [0.2, 0.5, 0.8])
def test_enumeration_throughput(benchmark, hot_fraction):
    """Raw enumeration throughput at different output densities."""
    query, stream = hot_star_workload(1_200, hot_fraction=hot_fraction)

    def run():
        engine = streaming_engine(query, WINDOW)
        total = 0
        for tup in stream:
            total += len(engine.process(tup))
        return total

    total = benchmark(run)
    assert total >= 0
