#!/usr/bin/env python3
"""Stock-market correlation scenario.

A classic CER motivation: whenever a news item about a symbol is followed by a
buy and a sell of the same symbol within a sliding window, report the triple.
The example contrasts

* the *unordered* conjunctive pattern (a hierarchical CQ evaluated through the
  Theorem 4.1 translation), and
* the *sequenced* pattern News → Buy → Sell built with the pattern DSL,

and compares the streaming engine against the naive re-evaluation baseline on
the same workload.

Run with::

    python examples/stock_correlation.py
"""

import time

from repro import (
    NaiveRecomputeEngine,
    StockStreamGenerator,
    StreamingEvaluator,
    atom,
    compile_pattern,
    conjunction,
    hcq_to_pcea,
    sequence,
)


WINDOW = 50
STREAM_LENGTH = 2_000


def run_engine(name, engine, stream):
    start = time.perf_counter()
    matches = 0
    for event in stream:
        matches += len(engine.process(event))
    elapsed = time.perf_counter() - start
    print(f"  {name:28s} {matches:6d} matches   {elapsed * 1000:8.1f} ms "
          f"({elapsed / len(stream) * 1e6:6.1f} µs/event)")
    return matches


def main() -> None:
    generator = StockStreamGenerator(symbols=25, news_probability=0.1, seed=42)
    query = generator.query()
    stream = generator.stream(STREAM_LENGTH).materialise()
    print(f"workload: {STREAM_LENGTH} events over {generator.symbols} symbols, window = {WINDOW}")
    print(f"conjunctive query: {query}")
    print()

    print("unordered pattern (News & Buy & Sell on the same symbol):")
    streaming_matches = run_engine(
        "PCEA streaming (Algorithm 1)",
        StreamingEvaluator(hcq_to_pcea(query), window=WINDOW),
        stream,
    )
    naive_matches = run_engine(
        "naive re-evaluation", NaiveRecomputeEngine(query, window=WINDOW), stream
    )
    assert streaming_matches == naive_matches, "engines must agree on the match count"
    print()

    print("sequenced pattern (News ; Buy ; Sell on the same symbol):")
    sequenced = compile_pattern(
        sequence(atom("News", "s"), atom("Buy", "s", "p"), atom("Sell", "s", "q"))
    )
    run_engine("PCEA streaming (Algorithm 1)", StreamingEvaluator(sequenced, window=WINDOW), stream)

    unordered_dsl = compile_pattern(
        conjunction(atom("News", "s"), atom("Buy", "s", "p"), atom("Sell", "s", "q"))
    )
    run_engine("unordered via DSL", StreamingEvaluator(unordered_dsl, window=WINDOW), stream)
    print()
    print("(the sequenced pattern reports a subset of the unordered matches)")


if __name__ == "__main__":
    main()
