#!/usr/bin/env python3
"""Sensor-network monitoring scenario under a sliding window.

Detect, for every alarm raised by a sensor, the temperature and humidity
readings of the *same sensor* still inside the sliding window — the
hierarchical pattern ``Alarm(s) ∧ Temp(s, t) ∧ Humid(s, h)``.  The example
shows how the window size changes both the number of reported matches and the
per-event cost of the naive baseline, while the streaming engine's update cost
stays flat (Theorem 5.1).

Run with::

    python examples/sensor_network.py
"""

import time

from repro import (
    DeltaJoinEngine,
    SensorStreamGenerator,
    StreamingEvaluator,
    hcq_to_pcea,
)


STREAM_LENGTH = 1_500


def measure(engine, stream):
    start = time.perf_counter()
    matches = 0
    for event in stream:
        matches += len(engine.process(event))
    return matches, time.perf_counter() - start


def main() -> None:
    generator = SensorStreamGenerator(sensors=8, alarm_probability=0.08, seed=7)
    query = generator.query()
    stream = generator.stream(STREAM_LENGTH).materialise()
    pcea = hcq_to_pcea(query)
    print(f"query: {query}")
    print(f"stream: {STREAM_LENGTH} readings from {generator.sensors} sensors")
    print()
    print(f"{'window':>8} | {'matches':>8} | {'streaming ms':>12} | {'delta-join ms':>13}")
    print("-" * 52)
    for window in (10, 25, 50, 100, 200):
        streaming_matches, streaming_time = measure(
            StreamingEvaluator(pcea, window=window), stream
        )
        delta_matches, delta_time = measure(DeltaJoinEngine(query, window=window), stream)
        assert streaming_matches == delta_matches
        print(
            f"{window:>8} | {streaming_matches:>8} | {streaming_time * 1000:>12.1f} | "
            f"{delta_time * 1000:>13.1f}"
        )
    print()
    print("Matches grow with the window; the streaming engine's update phase does not")
    print("re-enumerate old matches, so its cost grows only logarithmically with the window.")


if __name__ == "__main__":
    main()
