#!/usr/bin/env python3
"""Quickstart: from a hierarchical conjunctive query to a streaming CER engine.

This walks through the three public-API layers of the library:

1. write a hierarchical conjunctive query (HCQ),
2. translate it into a Parallelized Complex Event Automaton (Theorem 4.1),
3. evaluate it over a stream under a sliding window with the Section-5
   streaming algorithm (logarithmic update time, output-linear delay).

Run with::

    python examples/quickstart.py
"""

from repro import (
    StreamingEvaluator,
    Tuple,
    build_q_tree,
    hcq_to_pcea,
    is_hierarchical,
    parse_query,
)


def main() -> None:
    # ------------------------------------------------------------------ 1. the query
    # "Report every triple of events T(x), S(x, y), R(x, y) that agree on their
    #  join keys" — the running example Q0 of the paper.
    query = parse_query("Q(x, y) <- T(x), S(x, y), R(x, y)")
    print(f"query        : {query}")
    print(f"hierarchical : {is_hierarchical(query)}")
    print("q-tree       :")
    print(build_q_tree(query).pretty())
    print()

    # ------------------------------------------------------- 2. the automaton (PCEA)
    pcea = hcq_to_pcea(query)
    print(f"PCEA         : {pcea}")
    print(f"final states : {sorted(map(str, pcea.final))}")
    print()

    # ----------------------------------------------------------- 3. streaming engine
    # The stream S0 of the paper (Section 2).  Positions are implicit (0, 1, ...).
    stream = [
        Tuple("S", (2, 11)),
        Tuple("T", (2,)),
        Tuple("R", (1, 10)),
        Tuple("S", (2, 11)),
        Tuple("T", (1,)),
        Tuple("R", (2, 11)),
        Tuple("S", (4, 13)),
        Tuple("T", (1,)),
    ]
    engine = StreamingEvaluator(pcea, window=100)
    print("processing the stream:")
    for position, event in enumerate(stream):
        outputs = engine.process(event)
        rendered = ", ".join(
            "{" + ", ".join(f"atom{label}@{min(positions)}" for label, positions in sorted(output.items())) + "}"
            for output in outputs
        )
        print(f"  position {position}: {str(event):12s} -> {len(outputs)} new match(es) {rendered}")

    print()
    print("update-phase statistics:", engine.stats)


if __name__ == "__main__":
    main()
