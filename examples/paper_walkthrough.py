#!/usr/bin/env python3
"""A guided tour of the paper's running examples.

Reproduces, with library objects, the concrete examples used throughout the
paper:

* the stream ``S0`` and database ``D0`` of Sections 2 and 4,
* the chain automaton ``C0`` of Example 2.1 and its single match,
* the parallelized automaton ``P0`` of Example 3.3 and its *two* matches
  (the separation CCEA ⊊ PCEA of Proposition 3.4),
* the q-tree of ``Q0`` and the Theorem 4.1 automaton of Figure 2,
* the PFA of Example 3.1 and its determinization (Proposition 3.2).

Run with::

    python examples/paper_walkthrough.py
"""

from repro import (
    PFA,
    StreamingEvaluator,
    Tuple,
    bag_semantics,
    build_q_tree,
    determinize_pfa,
    hcq_to_pcea,
    parse_query,
)
from repro.cq.database import Database
from repro.cq.schema import Schema
from repro.core.ccea import CCEA, CCEATransition
from repro.core.predicates import ProjectionEquality, RelationPredicate


STREAM_S0 = [
    Tuple("S", (2, 11)),
    Tuple("T", (2,)),
    Tuple("R", (1, 10)),
    Tuple("S", (2, 11)),
    Tuple("T", (1,)),
    Tuple("R", (2, 11)),
    Tuple("S", (4, 13)),
    Tuple("T", (1,)),
]


def section_2_ccea() -> None:
    print("=" * 72)
    print("Example 2.1 — the chain automaton C0 (T before S before R)")
    ccea = CCEA(
        states={"q0", "q1", "q2"},
        initial={"q0": (RelationPredicate("T"), {"dot"})},
        transitions=[
            CCEATransition("q0", RelationPredicate("S"), ProjectionEquality({"T": (0,)}, {"S": (0,)}), {"dot"}, "q1"),
            CCEATransition("q1", RelationPredicate("R"), ProjectionEquality({"S": (0, 1)}, {"R": (0, 1)}), {"dot"}, "q2"),
        ],
        final={"q2"},
    )
    for position in range(len(STREAM_S0)):
        outputs = ccea.output_at(STREAM_S0, position)
        if outputs:
            print(f"  position {position}: {sorted(map(repr, outputs))}")
    print("  -> exactly one accepting run: the subsequence T(2), S(2,11), R(2,11).")


def section_3_pcea() -> None:
    print("=" * 72)
    print("Example 3.3 — the parallelized automaton P0 finds both orders of T and S")
    query = parse_query("Q(x, y) <- T(x), S(x, y), R(x, y)")
    pcea = hcq_to_pcea(query)
    engine = StreamingEvaluator(pcea, window=100)
    for position, event in enumerate(STREAM_S0):
        outputs = engine.process(event)
        if outputs:
            print(f"  position {position}: {sorted(map(repr, outputs))}")
    print("  -> two matches at position 5 (valuations {1,3,5} and {0,1,5}); a chain")
    print("     automaton cannot produce the second one (Proposition 3.4).")


def section_4_qtree_and_bag_semantics() -> None:
    print("=" * 72)
    print("Section 4 — q-tree of Q0 and bag semantics over D0")
    query = parse_query("Q(x, y) <- T(x), S(x, y), R(x, y)")
    print(build_q_tree(query).pretty())
    sigma0 = Schema({"R": 2, "S": 2, "T": 1})
    d0 = Database(sigma0, {i: STREAM_S0[i] for i in range(6)})
    output = bag_semantics(query, d0)
    print(f"  ⟦Q0⟧(D0) multiplicities: "
          f"{{Q0(2, 11): {output.multiplicity(Tuple('Q', (2, 11)))}}}")
    print("  (the duplicate S(2,11) tuple gives the output tuple multiplicity 2)")


def section_3_pfa() -> None:
    print("=" * 72)
    print("Example 3.1 — the PFA P0 over {T, S, R} and its determinization")
    sigma = {"T", "S", "R"}
    loops = {(frozenset({s}), a, s) for s in (0, 1, 2, 3, 4) for a in sigma}
    pfa = PFA(
        states={0, 1, 2, 3, 4},
        alphabet=sigma,
        transitions=loops
        | {
            (frozenset({0}), "T", 1),
            (frozenset({2}), "S", 3),
            (frozenset({1, 3}), "R", 4),
        },
        initial={0, 2},
        final={4},
    )
    for word in (["T", "S", "R"], ["S", "T", "R"], ["T", "R"]):
        print(f"  accepts {word!r:30s} -> {pfa.accepts(word)}")
    dfa = determinize_pfa(pfa)
    print(f"  determinized DFA has {len(dfa.states)} reachable states "
          f"(bound of Proposition 3.2: 2^{len(pfa.states)} = {2 ** len(pfa.states)})")


def main() -> None:
    section_2_ccea()
    section_3_pcea()
    section_4_qtree_and_bag_semantics()
    section_3_pfa()


if __name__ == "__main__":
    main()
