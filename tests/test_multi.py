"""Tests for the multi-query subsystem (repro.multi).

The load-bearing property: a :class:`MultiQueryEngine` with K registered
patterns produces, per query, exactly the outputs of K independent
:class:`StreamingEvaluator` instances over the same stream — including under
mid-stream registration/unregistration, per-query windows, hash-table
eviction, batched ingestion, and with predicate memoisation on or off.
"""

import pytest

from repro.core.evaluation import NotEqualityPredicateError, StreamingEvaluator
from repro.cq.hierarchical import NotHierarchicalError
from repro.cq.schema import Tuple
from repro.engine.dsl import atom, conjunction, sequence
from repro.multi import (
    MergedDispatchIndex,
    MultiQueryEngine,
    QueryHandle,
    QueryRegistry,
    compile_query,
)
from repro.streams.generators import random_stream

from helpers import QUERY_Q0, SIGMA0


#: A varied bundle of registerable queries over the σ0 relations (T/1, S/2, R/2).
QUERY_SPECS = [
    ("conj3", "Q1(x, y) <- T(x), S(x, y), R(x, y)"),
    ("conj2", "Q2(x, y) <- S(x, y), R(x, y)"),
    ("single", "Q3(x) <- T(x)"),
    ("seq", sequence(atom("T", "x"), atom("S", "x", "y"))),
    (
        "filtered",
        conjunction(
            atom("S", "x", "y", filters=[("y", ">", 0)]), atom("R", "x", "y")
        ),
    ),
]


def sigma0_stream(length, seed, domain_size=3):
    return random_stream(SIGMA0, length=length, domain_size=domain_size, seed=seed).materialise()


def reference_evaluator(query, window, start_position=0):
    """An independent evaluator aligned to global stream positions."""
    evaluator = StreamingEvaluator(compile_query(query), window=window, collect_stats=False)
    evaluator.position = start_position - 1
    return evaluator


class TestQueryRegistry:
    def test_register_all_query_forms(self):
        registry = QueryRegistry()
        handles = [
            registry.register("Q(x, y) <- T(x), S(x, y)", window=10),
            registry.register(QUERY_Q0, window=20),
            registry.register(sequence(atom("T", "x"), atom("S", "x", "y")), window=30),
            registry.register(compile_query(QUERY_Q0), window=40),
        ]
        assert len(registry) == 4
        assert [h.id for h in handles] == [0, 1, 2, 3]
        assert [e.handle for e in registry.entries()] == handles
        assert handles[1].window == 20

    def test_handles_are_never_reused(self):
        registry = QueryRegistry()
        first = registry.register(QUERY_Q0, window=5)
        registry.unregister(first)
        second = registry.register(QUERY_Q0, window=5)
        assert second.id != first.id
        assert first not in registry and second in registry

    def test_unregister_unknown_handle_raises(self):
        registry = QueryRegistry()
        handle = registry.register(QUERY_Q0, window=5)
        registry.unregister(handle)
        with pytest.raises(KeyError):
            registry.unregister(handle)

    def test_rejects_non_hierarchical_and_garbage(self):
        registry = QueryRegistry()
        with pytest.raises(NotHierarchicalError):
            registry.register("Q(x, y) <- A(x), B(y), C(x, y)", window=5)
        with pytest.raises(ValueError):
            registry.register("not a query", window=5)
        with pytest.raises(TypeError):
            registry.register(42, window=5)
        with pytest.raises(ValueError):
            registry.register(QUERY_Q0, window=-1)

    def test_rejects_non_equality_pcea(self):
        from repro.core.pcea import PCEA, PCEATransition
        from repro.core.predicates import LambdaBinaryPredicate, RelationPredicate

        pcea = PCEA(
            states={"a", "b"},
            transitions=[
                PCEATransition(set(), RelationPredicate("T"), {}, {0}, "a"),
                PCEATransition(
                    {"a"},
                    RelationPredicate("S"),
                    {"a": LambdaBinaryPredicate(lambda t1, t2: True)},
                    {1},
                    "b",
                ),
            ],
            final={"b"},
        )
        with pytest.raises(NotEqualityPredicateError):
            QueryRegistry().register(pcea, window=5)

    def test_version_bumps_on_change(self):
        registry = QueryRegistry()
        v0 = registry.version
        handle = registry.register(QUERY_Q0, window=5)
        assert registry.version > v0
        registry.unregister(handle)
        assert registry.version > v0 + 1


class TestMergedDispatchIndex:
    def test_entries_tagged_and_ordered(self):
        p1 = compile_query("Q1(x, y) <- T(x), S(x, y)")
        p2 = compile_query("Q2(x, y) <- S(x, y), R(x, y)")
        merged = MergedDispatchIndex(
            [("one", p1.dispatch_index()), ("two", p2.dispatch_index())]
        )
        assert len(merged) == len(p1.transitions) + len(p2.transitions)
        owners = [e.owner for e in merged.all_entries()]
        assert owners == ["one"] * len(p1.transitions) + ["two"] * len(p2.transitions)
        orders = [e.order for e in merged.all_entries()]
        assert orders == sorted(orders)

    def test_candidates_union_across_queries(self):
        p1 = compile_query("Q1(x, y) <- T(x), S(x, y)")
        p2 = compile_query("Q2(x, y) <- S(x, y), R(x, y)")
        merged = MergedDispatchIndex(
            [("one", p1.dispatch_index()), ("two", p2.dispatch_index())]
        )
        s_owners = {e.owner for e in merged.candidates_for(Tuple("S", (1, 2)))}
        assert s_owners == {"one", "two"}
        t_owners = {e.owner for e in merged.candidates_for(Tuple("T", (1,)))}
        assert t_owners == {"one"}
        assert merged.candidates_for(Tuple("Unknown", (1,))) == ()

    def test_structurally_identical_predicates_share_a_key(self):
        p1 = compile_query("Q1(x, y) <- T(x), S(x, y)")
        p2 = compile_query("Q2(x, y) <- T(x), S(x, y)")
        merged = MergedDispatchIndex(
            [("one", p1.dispatch_index()), ("two", p2.dispatch_index())]
        )
        keys_by_owner = {}
        for e in merged.all_entries():
            keys_by_owner.setdefault(e.owner, []).append(e.pred_key)
        assert keys_by_owner["one"] == keys_by_owner["two"]
        info = merged.describe()
        assert info["queries"] == 2
        assert info["shared_predicate_groups"] == info["predicate_groups"]

    def test_describe_reports_fanout_and_groups(self):
        p1 = compile_query(QUERY_Q0)
        merged = MergedDispatchIndex([("only", p1.dispatch_index())])
        info = merged.describe()
        assert info["queries"] == 1
        assert info["transitions"] == len(p1.transitions)
        # Even one automaton may reuse a predicate across transitions, so the
        # shared-group count is bounded by, not equal to, the group count.
        assert 0 <= info["shared_predicate_groups"] <= info["predicate_groups"]
        assert info["max_candidates"] >= info["mean_candidates"] > 0

    def test_guard_buckets_prune_by_value(self):
        branch = lambda b: atom("E", "t", "y", filters=[("t", "==", b)])
        pcea = compile_query(conjunction(branch(0)))
        other = compile_query(conjunction(branch(1)))
        merged = MergedDispatchIndex(
            [("zero", pcea.dispatch_index()), ("one", other.dispatch_index())]
        )
        assert [e.owner for e in merged.candidates_for(Tuple("E", (0, 5)))] == ["zero"]
        assert [e.owner for e in merged.candidates_for(Tuple("E", (1, 5)))] == ["one"]
        assert list(merged.candidates_for(Tuple("E", (7, 5)))) == []

    def test_guard_buckets_patched_incrementally(self):
        """add_query/remove_query keep the constant-guard refinement exact."""
        branch = lambda b: atom("E", "t", "y", filters=[("t", "==", b)])
        merged = MergedDispatchIndex()
        merged.add_query("zero", compile_query(conjunction(branch(0))).dispatch_index())
        merged.add_query("one", compile_query(conjunction(branch(1))).dispatch_index())
        merged.add_query("one-b", compile_query(conjunction(branch(1))).dispatch_index())
        assert [e.owner for e in merged.candidates_for(Tuple("E", (1, 5)))] == ["one", "one-b"]
        merged.remove_query("one")
        assert [e.owner for e in merged.candidates_for(Tuple("E", (1, 5)))] == ["one-b"]
        assert [e.owner for e in merged.candidates_for(Tuple("E", (0, 5)))] == ["zero"]
        merged.remove_query("one-b")
        merged.remove_query("zero")
        assert list(merged.candidates_for(Tuple("E", (0, 5)))) == []
        assert len(merged) == 0 and merged.interned_key_count() == 0


class TestMultiDifferential:
    """K registered patterns == K independent evaluators, per query."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("memoise", [True, False])
    def test_mixed_queries_random_streams(self, seed, memoise):
        windows = [4, 7, 3, 9, 5]
        engine = MultiQueryEngine(memoise=memoise)
        handles, references = [], []
        for (name, query), window in zip(QUERY_SPECS, windows):
            handles.append(engine.register(query, window=window, name=name))
            references.append(reference_evaluator(query, window))
        for tup in sigma0_stream(60, seed):
            outputs = engine.process(tup)
            for handle, reference in zip(handles, references):
                assert set(outputs.get(handle.id, [])) == set(reference.process(tup)), (
                    f"query {handle} diverged at position {engine.position}"
                )

    @pytest.mark.parametrize("seed", [0, 3])
    def test_register_mid_stream(self, seed):
        stream = sigma0_stream(50, seed)
        split = 20
        engine = MultiQueryEngine()
        base_query = QUERY_SPECS[0][1]
        base = engine.register(base_query, window=6)
        base_reference = reference_evaluator(base_query, 6)
        for tup in stream[:split]:
            outputs = engine.process(tup)
            assert set(outputs.get(base.id, [])) == set(base_reference.process(tup))
        # The late query observes only the suffix, at global positions.
        late_query = QUERY_SPECS[1][1]
        late = engine.register(late_query, window=5)
        late_reference = reference_evaluator(late_query, 5, start_position=split)
        for tup in stream[split:]:
            outputs = engine.process(tup)
            assert set(outputs.get(base.id, [])) == set(base_reference.process(tup))
            assert set(outputs.get(late.id, [])) == set(late_reference.process(tup))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_unregister_mid_stream(self, seed):
        stream = sigma0_stream(50, seed)
        split = 25
        engine = MultiQueryEngine()
        keep_query, drop_query = QUERY_SPECS[0][1], QUERY_SPECS[1][1]
        keep = engine.register(keep_query, window=6)
        drop = engine.register(drop_query, window=4)
        keep_reference = reference_evaluator(keep_query, 6)
        drop_reference = reference_evaluator(drop_query, 4)
        for tup in stream[:split]:
            outputs = engine.process(tup)
            assert set(outputs.get(keep.id, [])) == set(keep_reference.process(tup))
            assert set(outputs.get(drop.id, [])) == set(drop_reference.process(tup))
        engine.unregister(drop)
        assert drop not in engine.registry
        for tup in stream[split:]:
            outputs = engine.process(tup)
            assert drop.id not in outputs
            assert set(outputs.get(keep.id, [])) == set(keep_reference.process(tup))

    def test_window_expiry_per_query(self):
        # Two copies of the same pattern with different windows: the tight
        # window must drop exactly the matches whose span exceeds it.
        engine = MultiQueryEngine()
        query = "Q(x, y) <- T(x), S(x, y)"
        tight = engine.register(query, window=1)
        loose = engine.register(query, window=10)
        stream = [
            Tuple("T", (1,)),       # 0
            Tuple("R", (9, 9)),     # 1 (filler)
            Tuple("S", (1, 5)),     # 2: span 2 > tight window, within loose
        ]
        results = [engine.process(tup) for tup in stream]
        assert results[2].get(tight.id) is None
        assert len(results[2][loose.id]) == 1

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 50])
    def test_process_many_matches_per_tuple(self, batch_size):
        stream = sigma0_stream(60, seed=5)
        windows = [4, 7, 3, 9, 5]
        batched_engine = MultiQueryEngine()
        stepwise_engine = MultiQueryEngine()
        batched_handles, stepwise_handles = [], []
        for (name, query), window in zip(QUERY_SPECS, windows):
            batched_handles.append(batched_engine.register(query, window=window))
            stepwise_handles.append(stepwise_engine.register(query, window=window))
        batched_results = []
        for begin in range(0, len(stream), batch_size):
            batched_results.extend(batched_engine.process_many(stream[begin : begin + batch_size]))
        stepwise_results = [stepwise_engine.process(tup) for tup in stream]
        for batched, stepwise in zip(batched_results, stepwise_results):
            for bh, sh in zip(batched_handles, stepwise_handles):
                assert set(batched.get(bh.id, [])) == set(stepwise.get(sh.id, []))
        # Batched eviction reclaims the same entries by the end of the stream.
        assert batched_engine.hash_table_size() == stepwise_engine.hash_table_size()


class TestSharedEvictionSweep:
    def test_hash_tables_stay_window_bounded(self):
        engine = MultiQueryEngine()
        engine.register("Q1(x, y) <- S(x, y), R(x, y)", window=8)
        engine.register("Q2(x, y) <- T(x), S(x, y)", window=4)
        # High-cardinality keys: without eviction the tables would grow with
        # the stream; the shared sweep must keep them bounded by the windows.
        stream = sigma0_stream(800, seed=2, domain_size=500)
        max_size = 0
        for tup in stream:
            engine.process(tup)
            max_size = max(max_size, engine.hash_table_size())
        assert engine.evicted > 100
        assert max_size <= 8 * (8 + 1) + 8 * (4 + 1)

    def test_unregistered_lane_entries_are_skipped(self):
        engine = MultiQueryEngine()
        handle = engine.register("Q(x, y) <- T(x), S(x, y)", window=3)
        engine.process(Tuple("T", (1,)))
        engine.unregister(handle)
        # The expiry bucket still references the dropped lane; sweeping past
        # its expiry position must not fail or resurrect it.
        for _ in range(6):
            engine.process(Tuple("R", (0, 0)))
        assert engine.hash_table_size() == 0


class TestPredicateMemoisation:
    """Property: memoisation never changes outputs, only evaluation counts."""

    @pytest.mark.parametrize("seed", list(range(6)))
    def test_memoised_equals_unmemoised(self, seed):
        stream = sigma0_stream(40, seed)
        engines = {
            flag: MultiQueryEngine(memoise=flag, collect_stats=True)
            for flag in (True, False)
        }
        handle_pairs = []
        for name, query in QUERY_SPECS:
            pair = [engines[flag].register(query, window=5) for flag in (True, False)]
            handle_pairs.append(pair)
        for tup in stream:
            memoised = engines[True].process(tup)
            plain = engines[False].process(tup)
            for with_memo, without_memo in handle_pairs:
                assert set(memoised.get(with_memo.id, [])) == set(
                    plain.get(without_memo.id, [])
                )
        assert (
            engines[True].stats.predicate_evaluations
            < engines[False].stats.predicate_evaluations
        )
        assert engines[False].stats.predicate_cache_hits == 0

    def test_duplicate_queries_evaluate_predicates_once(self):
        engine = MultiQueryEngine(collect_stats=True)
        query = "Q(x, y) <- T(x), S(x, y), R(x, y)"
        first = engine.register(query, window=10)
        second = engine.register(query, window=10)
        outputs = {}
        for tup in [Tuple("T", (1,)), Tuple("S", (1, 2)), Tuple("R", (1, 2))]:
            outputs = engine.process(tup)
        # Identical queries, identical outputs — but each tuple evaluated each
        # distinct predicate exactly once for both queries together.
        assert set(outputs[first.id]) == set(outputs[second.id])
        assert engine.stats.predicate_cache_hits > 0
        info = engine.dispatch_info()
        assert info["queries"] == 2
        assert info["shared_predicate_groups"] == info["predicate_groups"] > 0


class TestEngineIntrospection:
    def test_dispatch_info_tracks_registration(self):
        engine = MultiQueryEngine()
        assert engine.dispatch_info()["queries"] == 0
        handle = engine.register(QUERY_Q0, window=5)
        assert engine.dispatch_info()["queries"] == 1
        engine.unregister(handle)
        assert engine.dispatch_info()["queries"] == 0

    def test_handles_and_run(self):
        engine = MultiQueryEngine()
        h1 = engine.register("Q1(x) <- T(x)", window=5, name="mine")
        assert engine.handles() == [h1]
        assert h1.name == "mine"
        results = engine.run([Tuple("T", (1,)), Tuple("S", (1, 2))])
        assert set(results[0][h1.id]) == set(
            StreamingEvaluator(compile_query("Q1(x) <- T(x)"), window=5).process(
                Tuple("T", (1,))
            )
        )

    def test_stats_off_by_default(self):
        engine = MultiQueryEngine()
        engine.register(QUERY_Q0, window=5)
        for tup in sigma0_stream(20, seed=1):
            engine.process(tup)
        assert engine.stats.tuples_processed == 0
        assert engine.stats.predicate_evaluations == 0
