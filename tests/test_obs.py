"""Tests for the observability layer (repro.obs).

Covers the metrics primitives (log-bucket histograms, registry,
Prometheus exposition), the span ring (wrap, counts, exports), the
observer's attach/detach contract (the engine's class and methods are
never touched), period-clock sampling (grid counts, output parity,
checkpoint/restore span determinism), the zero-allocation no-op path, and
the CLI flags on all three modes.
"""

import io
import json
import math

import pytest
from hypothesis import given, settings

from helpers import QUERY_Q0, STREAM_S0, streams_strategy
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.cq.schema import Tuple
from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.multi.engine import MultiQueryEngine
from repro.obs import (
    MetricsRegistry,
    Observer,
    TraceRecorder,
    instrument_allocations,
)
from repro.obs.metrics import NUM_BUCKETS, _bucket_index, bucket_upper_bound


PCEA_Q0 = hcq_to_pcea(QUERY_Q0)


def _stream(repeats: int = 40):
    """A deterministic join-heavy stream long enough to cross sample grids."""
    return [tup for _ in range(repeats) for tup in STREAM_S0]


# --------------------------------------------------------------------- metrics
class TestHistogram:
    def test_bucket_bounds_monotonic(self):
        bounds = [bucket_upper_bound(i) for i in range(NUM_BUCKETS)]
        assert bounds == sorted(bounds)
        assert bounds[-1] == math.inf

    def test_bucket_index_monotonic_in_value(self):
        values = [0.0, 1e-12, 3e-7, 1e-6, 2.5e-6, 1e-3, 0.5, 1.0, 70.0, 1e9]
        indexes = [_bucket_index(v) for v in values]
        assert indexes == sorted(indexes)
        assert all(0 <= i < NUM_BUCKETS for i in indexes)

    def test_recorded_value_within_its_bucket_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (1e-7, 3.3e-6, 0.02, 1.5):
            hist.record(value)
            # Conservative quantiles: the p100 bound never under-reports.
            assert hist.quantile(1.0) >= value

    def test_quantiles_and_mean(self):
        hist = MetricsRegistry().histogram("h")
        for _ in range(99):
            hist.record(1e-6)
        hist.record(1.0)
        assert hist.count == 100
        assert hist.quantile(0.5) < 1e-5
        assert hist.quantile(0.999) >= 1.0
        assert abs(hist.mean() - (99e-6 + 1.0) / 100) < 1e-9
        assert len(hist.nonzero_buckets()) == 2

    def test_empty_histogram(self):
        hist = MetricsRegistry().histogram("h")
        assert hist.quantile(0.99) == 0.0
        assert hist.mean() == 0.0

    def test_registry_interns_and_rejects_type_conflicts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c", {"k": "v"})
        assert registry.counter("c", {"k": "v"}) is counter
        assert registry.counter("c", {"k": "other"}) is not counter
        with pytest.raises(TypeError):
            registry.gauge("c", {"k": "v"})

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_events_total").inc(5)
        registry.gauge("repro_live", {"engine": "single"}).set(2.5)
        hist = registry.histogram("repro_lat_seconds")
        hist.record(1e-6)
        hist.record(2.0)
        text = registry.to_prometheus()
        assert "# TYPE repro_events_total counter" in text
        assert "repro_events_total 5" in text
        assert 'repro_live{engine="single"} 2.5' in text
        assert "# TYPE repro_lat_seconds histogram" in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text
        # le buckets are cumulative.
        lines = [l for l in text.splitlines() if l.startswith("repro_lat_seconds_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)

    def test_collect_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").record(0.5)
        json.dumps(registry.collect())


# ------------------------------------------------------------------ trace ring
class TestTraceRecorder:
    def test_ring_wrap_keeps_counts(self):
        trace = TraceRecorder(capacity=4, sample_every=1)
        for index in range(10):
            trace.record("tuple", float(index), 0.001, {"position": index})
        assert len(trace) == 4
        assert trace.total == 10
        assert trace.dropped == 6
        assert trace.counts() == {"tuple": 10}
        # Retained spans are the newest four, oldest first.
        positions = [span[3]["position"] for span in trace.spans()]
        assert positions == [6, 7, 8, 9]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)
        with pytest.raises(ValueError):
            TraceRecorder(sample_every=0)

    def test_exports(self, tmp_path):
        trace = TraceRecorder(capacity=16)
        trace.record("sweep", 1.0, 0.002, {"position": 7, "evicted": 3})
        trace.record("union", 1.1, 0.0, {"count": 2})
        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        assert trace.export_jsonl(str(jsonl)) == 2
        lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert lines[0]["kind"] == "sweep" and lines[0]["evicted"] == 3
        assert trace.export_chrome(str(chrome)) == 2
        payload = json.loads(chrome.read_text())
        events = payload["traceEvents"]
        assert events[0]["ph"] == "X" and events[0]["name"] == "sweep"
        assert events[1]["ph"] == "i"  # zero-duration spans are instants
        assert payload["otherData"]["dropped_spans"] == 0


# ------------------------------------------------------------- attach / detach
class TestAttachDetach:
    def test_engine_class_and_instance_never_shadowed(self):
        """The period clock must not touch the engine's dispatch surface."""
        class_update = StreamingEvaluator.update
        engine = StreamingEvaluator(PCEA_Q0, window=16)
        observer = Observer(sample_every=4)
        engine.attach_observer(observer)
        for tup in _stream(5):
            engine.process(tup)
        assert StreamingEvaluator.update is class_update
        assert "update" not in engine.__dict__
        engine.detach_observer()
        assert StreamingEvaluator.update is class_update
        assert "update" not in engine.__dict__

    def test_detach_resets_runtime_and_instance_state(self):
        engine = StreamingEvaluator(PCEA_Q0, window=16)
        observer = Observer(sample_every=4)
        engine.attach_observer(observer)
        for tup in _stream(3):
            engine.process(tup)
        engine.detach_observer()
        runtime = engine._runtime
        assert runtime.obs is None
        assert runtime.obs_arm is None
        assert runtime.obs_next == -1
        assert runtime.obs_sweep_sampled is False
        assert runtime.obs_sample_every == 1
        for name in ("enumerate_outputs", "snapshot", "restore"):
            assert name not in engine.__dict__
        assert engine.observer is None

    def test_double_attach_rejected(self):
        engine = StreamingEvaluator(PCEA_Q0, window=16)
        engine.attach_observer(Observer())
        with pytest.raises(ValueError):
            Observer().attach(engine)


# ------------------------------------------------------------- period sampling
class TestPeriodSampling:
    def test_sampled_count_matches_grid(self):
        engine = StreamingEvaluator(PCEA_Q0, window=16)
        observer = Observer(trace=TraceRecorder(sample_every=8), sample_every=8)
        engine.attach_observer(observer)
        stream = _stream(20)  # 160 tuples, positions 0..159
        for tup in stream:
            engine.process(tup)
        # Grid positions 0, 8, ..., 152 all have a successor: 20 samples.
        assert observer._tuples_sampled.value == 20
        assert observer.trace.counts()["tuple"] == 20

    def test_outputs_identical_with_observer(self):
        stream = _stream(20)
        plain = StreamingEvaluator(PCEA_Q0, window=16)
        expected = [len(plain.process(tup)) for tup in stream]
        observed = StreamingEvaluator(PCEA_Q0, window=16)
        observed.attach_observer(Observer(sample_every=4))
        assert [len(observed.process(tup)) for tup in stream] == expected

    def test_batched_path_sampled(self):
        stream = _stream(20)
        plain = StreamingEvaluator(PCEA_Q0, window=16)
        expected = [len(out) for out in plain.process_many(stream)]
        observed = StreamingEvaluator(PCEA_Q0, window=16)
        observer = Observer(sample_every=8)
        observed.attach_observer(observer)
        assert [len(out) for out in observed.process_many(stream)] == expected
        assert observer._tuples_sampled.value == 20
        assert observer._batches.value == 1

    def test_dense_sampling_every_tuple(self):
        engine = StreamingEvaluator(PCEA_Q0, window=16)
        observer = Observer(sample_every=1)
        engine.attach_observer(observer)
        for tup in _stream(10):  # 80 tuples
            engine.process(tup)
        # Every position except the last (no successor) completes a period.
        assert observer._tuples_sampled.value == 79

    def test_interleaved_siblings_do_not_interfere(self):
        stream = _stream(20)
        plain = StreamingEvaluator(PCEA_Q0, window=16)
        expected = [len(plain.process(tup)) for tup in stream]
        watched = StreamingEvaluator(PCEA_Q0, window=16)
        sibling = StreamingEvaluator(PCEA_Q0, window=16)
        observer = Observer(sample_every=8)
        watched.attach_observer(observer)
        got_watched, got_sibling = [], []
        for tup in stream:
            got_watched.append(len(watched.process(tup)))
            got_sibling.append(len(sibling.process(tup)))
        assert got_watched == expected
        assert got_sibling == expected
        assert observer._tuples_sampled.value == 20

    def test_general_and_multi_engines_sample(self):
        stream = _stream(20)
        general = GeneralStreamingEvaluator(PCEA_Q0, window=16)
        obs_general = Observer(sample_every=8)
        general.attach_observer(obs_general)
        for tup in stream:
            general.process(tup)
        assert obs_general._tuples_sampled.value == 20

        multi = MultiQueryEngine()
        multi.register("Q(x, y) <- T(x), S(x, y), R(x, y)", window=16)
        obs_multi = Observer(sample_every=8)
        multi.attach_observer(obs_multi)
        for tup in stream:
            multi.process(tup)
        assert obs_multi._tuples_sampled.value == 20

    def test_checkpoint_restore_span_determinism(self):
        """A checkpoint→restore run emits the spans of an uninterrupted run
        plus exactly one checkpoint and one restore span."""
        stream = _stream(30)
        straight = StreamingEvaluator(PCEA_Q0, window=16)
        obs_straight = Observer(trace=TraceRecorder(sample_every=4), sample_every=4)
        straight.attach_observer(obs_straight)
        expected = [len(straight.process(tup)) for tup in stream]

        first = StreamingEvaluator(PCEA_Q0, window=16)
        obs_first = Observer(trace=TraceRecorder(sample_every=4), sample_every=4)
        first.attach_observer(obs_first)
        midpoint = len(stream) // 2
        outputs = [len(first.process(tup)) for tup in stream[:midpoint]]
        snap = first.snapshot()
        second = StreamingEvaluator(PCEA_Q0, window=16)
        obs_second = Observer(trace=TraceRecorder(sample_every=4), sample_every=4)
        second.attach_observer(obs_second)
        second.restore(snap)
        outputs += [len(second.process(tup)) for tup in stream[midpoint:]]
        assert outputs == expected

        straight_counts = obs_straight.trace.counts()
        merged: dict = {}
        for counts in (obs_first.trace.counts(), obs_second.trace.counts()):
            for kind, count in counts.items():
                merged[kind] = merged.get(kind, 0) + count
        assert merged.pop("checkpoint") == 1
        assert merged.pop("restore") == 1
        assert merged == straight_counts


# ------------------------------------------------------------------ no-op path
class TestNoOpPath:
    def test_unobserved_runs_allocate_zero_instruments(self):
        stream = _stream(10)
        engines = [
            StreamingEvaluator(PCEA_Q0, window=16),
            GeneralStreamingEvaluator(PCEA_Q0, window=16),
        ]
        multi = MultiQueryEngine()
        multi.register("Q(x, y) <- T(x), S(x, y), R(x, y)", window=16)
        engines.append(multi)
        before = instrument_allocations()
        for engine in engines:
            for tup in stream:
                engine.process(tup)
            engine.observe()
            engine.memory_info()
        assert instrument_allocations() == before

    def test_sweep_counters_gated_on_collect_stats(self):
        stream = _stream(40)
        counting = StreamingEvaluator(PCEA_Q0, window=4, collect_stats=True)
        for tup in stream:
            counting.process(tup)
        stats = counting._runtime.stats
        assert stats.sweeps > 0
        assert stats.sweep_evicted > 0
        assert stats.sweep_seconds == 0.0  # only observers time sweeps

        fast = StreamingEvaluator(PCEA_Q0, window=4, collect_stats=False)
        for tup in stream:
            fast.process(tup)
        assert fast._runtime.stats.sweeps == 0
        assert fast._runtime.stats.sweep_evicted == 0
        # Eviction itself is identical either way.
        assert fast.evicted == counting.evicted


# ------------------------------------------------- cross-engine observe parity
class TestObserveParity:
    ENGINE_KEYS = {
        "engine",
        "position",
        "hash_entries",
        "evicted",
        "stats",
        "dispatch",
        "fanout",
        "memory",
        "kernel",
    }

    def _engines(self):
        multi = MultiQueryEngine(collect_stats=True)
        multi.register("Q(x, y) <- T(x), S(x, y), R(x, y)", window=16)
        return [
            StreamingEvaluator(PCEA_Q0, window=16),
            GeneralStreamingEvaluator(PCEA_Q0, window=16),
            multi,
        ]

    def test_observe_key_parity_across_engines(self):
        for engine in self._engines():
            for tup in _stream(5):
                engine.process(tup)
            snapshot = engine.observe()
            assert self.ENGINE_KEYS <= set(snapshot), type(engine).__name__
            assert set(snapshot["stats"]) == set(
                self._engines()[0].observe()["stats"]
            )

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(max_length=25, domain=3))
    def test_memory_info_key_parity_across_engines(self, stream):
        """Same workload → same memory_info keys, monotonic positions."""
        engines = self._engines()
        key_sets = []
        for engine in engines:
            last_position = engine.position
            for tup in stream:
                engine.process(tup)
                assert engine.position > last_position
                last_position = engine.position
            info = engine.memory_info()
            key_sets.append(set(info))
            for value in info.values():
                assert isinstance(value, int)
        # Single and multi expose the same arena-level view; the general
        # engine extends it with its ring-buffer occupancy (ring_* keys).
        assert key_sets[0] == key_sets[2]
        assert key_sets[0] <= key_sets[1]
        assert all(k.startswith("ring_") for k in key_sets[1] - key_sets[0])

    @settings(max_examples=25, deadline=None)
    @given(streams_strategy(max_length=30, domain=3))
    def test_observer_does_not_perturb_state(self, stream):
        """memory_info / observe / outputs are identical with an observer."""
        plain = StreamingEvaluator(PCEA_Q0, window=8)
        observed = StreamingEvaluator(PCEA_Q0, window=8)
        observed.attach_observer(Observer(sample_every=4))
        plain_outputs = [len(plain.process(tup)) for tup in stream]
        observed_outputs = [len(observed.process(tup)) for tup in stream]
        assert observed_outputs == plain_outputs
        assert observed.memory_info() == plain.memory_info()
        plain_snapshot = plain.observe()
        observed_snapshot = observed.observe()
        # sweep_seconds is a timing accumulator only sampled sweeps fill in;
        # every semantic counter must be bit-identical.
        for snapshot in (plain_snapshot, observed_snapshot):
            snapshot["stats"].pop("sweep_seconds", None)
        for key in ("position", "hash_entries", "evicted", "stats", "fanout"):
            assert observed_snapshot[key] == plain_snapshot[key]

    @settings(max_examples=10, deadline=None)
    @given(streams_strategy(max_length=20, domain=3))
    def test_observer_collect_reports_engine_gauges(self, stream):
        engine = StreamingEvaluator(PCEA_Q0, window=8)
        observer = Observer(sample_every=4)
        engine.attach_observer(observer)
        for tup in stream:
            engine.process(tup)
        collected = observer.collect()
        assert collected["repro_stream_position"] == engine.position
        assert collected["repro_hash_entries"] == engine.hash_table_size()


# ------------------------------------------------------------------------- CLI
EVENTS_CSV = """\
S,2,11
T,2
R,1,10
S,2,11
T,1
R,2,11
"""

QUERY = "Q(x, y) <- T(x), S(x, y), R(x, y)"


class TestCliObservability:
    def _events(self):
        from repro.cli import read_events

        return list(read_events(EVENTS_CSV.splitlines()))

    def _run_single(self, argv):
        from repro.cli import build_parser, run

        args = build_parser().parse_args(argv)
        output = io.StringIO()
        code = run(args, self._events(), output)
        return code, output.getvalue()

    def _run_multi(self, argv):
        from repro.cli import build_multi_parser, run_multi

        args = build_multi_parser().parse_args(argv)
        output = io.StringIO()
        code = run_multi(args, self._events(), output)
        return code, output.getvalue()

    @pytest.mark.parametrize("extra", [[], ["--general"]])
    def test_single_and_general_mode_exports(self, tmp_path, extra):
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        code, output = self._run_single(
            ["--query", QUERY, "--window", "100", "--quiet"]
            + extra
            + [
                "--metrics-file", str(metrics),
                "--trace", str(trace),
                "--trace-sample", "1",
            ]
        )
        assert code == 0
        assert "# metrics: wrote" in output
        assert "# trace: wrote" in output
        text = metrics.read_text()
        assert "# TYPE repro_update_seconds histogram" in text
        assert "repro_stream_position" in text
        payload = json.loads(trace.read_text())
        assert any(event["name"] == "tuple" for event in payload["traceEvents"])

    def test_multi_mode_exports(self, tmp_path):
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        code, output = self._run_multi(
            [
                "--query", QUERY,
                "--query", "Q2(x, y) <- T(x), S(x, y)",
                "--window", "100", "--quiet",
                "--metrics-file", str(metrics),
                "--trace", str(trace),
                "--trace-sample", "1",
            ]
        )
        assert code == 0
        assert "# metrics: wrote" in output
        assert "# trace: wrote" in output
        assert "repro_update_seconds" in metrics.read_text()
        kinds = {json.loads(line)["kind"] for line in trace.read_text().splitlines()}
        assert "tuple" in kinds

    def test_stats_interval_lines(self):
        code, output = self._run_single(
            ["--query", QUERY, "--window", "100", "--quiet", "--stats-interval", "2"]
        )
        assert code == 0
        interval_lines = [l for l in output.splitlines() if l.startswith("# interval")]
        assert len(interval_lines) == 3  # 6 events, one line per 2
        assert "events/s=" in interval_lines[0]

    def test_trace_sample_must_be_positive(self):
        code, _ = self._run_single(
            ["--query", QUERY, "--trace-sample", "0", "--quiet"]
        )
        assert code != 0
