"""Tests for acyclicity (GYO reduction) and join trees (repro.cq.acyclic)."""

import pytest

from repro.cq.acyclic import build_join_tree, gyo_reduction, is_acyclic
from repro.cq.query import Atom, ConjunctiveQuery, Variable

from helpers import QUERY_NON_HIERARCHICAL, QUERY_Q0, QUERY_Q1, QUERY_Q2, QUERY_STARDEEP

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestIsAcyclic:
    def test_paper_examples_are_acyclic(self):
        assert is_acyclic(QUERY_Q0)
        assert is_acyclic(QUERY_Q1)
        assert is_acyclic(QUERY_Q2)
        assert is_acyclic(QUERY_STARDEEP)

    def test_non_hierarchical_but_acyclic(self):
        assert is_acyclic(QUERY_NON_HIERARCHICAL)

    def test_triangle_query_is_cyclic(self):
        triangle = ConjunctiveQuery(
            [X, Y, Z],
            [Atom("E", (X, Y)), Atom("E", (Y, Z)), Atom("E", (Z, X))],
        )
        assert not is_acyclic(triangle)

    def test_square_query_is_cyclic(self):
        a, b, c, d = (Variable(n) for n in "abcd")
        square = ConjunctiveQuery(
            [a, b, c, d],
            [Atom("E", (a, b)), Atom("F", (b, c)), Atom("G", (c, d)), Atom("H", (d, a))],
        )
        assert not is_acyclic(square)

    def test_single_atom_is_acyclic(self):
        assert is_acyclic(ConjunctiveQuery([X], [Atom("T", (X,))]))

    def test_disconnected_query_is_acyclic(self):
        query = ConjunctiveQuery([X, Y], [Atom("T", (X,)), Atom("U", (Y,))])
        assert is_acyclic(query)

    def test_gyo_reports_elimination_order(self):
        acyclic, elimination = gyo_reduction(QUERY_Q0)
        assert acyclic
        eliminated = {edge for edge, _ in elimination}
        # One representative per distinct atom must be eliminated.
        assert len(eliminated) == 3


class TestJoinTree:
    def test_join_tree_validates_for_acyclic_queries(self):
        for query in (QUERY_Q0, QUERY_Q2, QUERY_STARDEEP, QUERY_NON_HIERARCHICAL):
            tree = build_join_tree(query)
            tree.validate()

    def test_join_tree_covers_distinct_atoms(self):
        tree = build_join_tree(QUERY_Q2)
        representatives = {node.atom_index for node in tree.nodes()}
        # R(x,y,z), R(x,y,v) and U(x,y) are pairwise distinct atoms.
        assert len(representatives) == 3

    def test_join_tree_raises_for_cyclic_query(self):
        triangle = ConjunctiveQuery(
            [X, Y, Z],
            [Atom("E", (X, Y)), Atom("F", (Y, Z)), Atom("G", (Z, X))],
        )
        with pytest.raises(ValueError):
            build_join_tree(triangle)

    def test_join_tree_edges_are_parent_child_pairs(self):
        tree = build_join_tree(QUERY_Q0)
        nodes = {node.atom_index for node in tree.nodes()}
        for parent, child in tree.edges():
            assert parent in nodes and child in nodes

    def test_repeated_atoms_share_a_node(self):
        query = ConjunctiveQuery([X], [Atom("T", (X,)), Atom("T", (X,))])
        tree = build_join_tree(query)
        (node,) = list(tree.nodes())
        assert set(node.atom_ids) == {0, 1}
