"""Tests for valuations and their algebra (repro.valuation)."""

import pytest
from hypothesis import given, strategies as st

from repro.valuation import Valuation, is_simple_product, product_of


def small_valuations() -> st.SearchStrategy[Valuation]:
    return st.builds(
        Valuation,
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.sets(st.integers(min_value=0, max_value=6), max_size=3),
            max_size=3,
        ),
    )


class TestValuationBasics:
    def test_singleton(self):
        valuation = Valuation.singleton({"a", "b"}, 4)
        assert valuation["a"] == frozenset({4})
        assert valuation["b"] == frozenset({4})
        assert valuation["c"] == frozenset()

    def test_empty_sets_are_normalised_away(self):
        valuation = Valuation({"a": set(), "b": {1}})
        assert valuation.labels() == {"b"}
        assert valuation == Valuation({"b": {1}})

    def test_empty_valuation(self):
        empty = Valuation.empty()
        assert empty.is_empty()
        assert not empty
        assert empty.positions() == frozenset()
        with pytest.raises(ValueError):
            empty.min_position()
        with pytest.raises(ValueError):
            empty.max_position()

    def test_min_max_and_positions(self):
        valuation = Valuation({"a": {1, 5}, "b": {3}})
        assert valuation.min_position() == 1
        assert valuation.max_position() == 5
        assert valuation.positions() == {1, 3, 5}

    def test_size(self):
        assert Valuation({"a": {1, 2}, "b": {2}}).size() == 3
        assert Valuation.empty().size() == 0

    def test_within_window(self):
        valuation = Valuation({"a": {10}})
        assert valuation.within_window(position=15, window=5)
        assert not valuation.within_window(position=16, window=5)
        assert Valuation.empty().within_window(100, 0)

    def test_equality_and_hash(self):
        assert Valuation({"a": {1}}) == Valuation({"a": {1}})
        assert hash(Valuation({"a": {1}})) == hash(Valuation({"a": {1}}))
        assert Valuation({"a": {1}}) != Valuation({"a": {2}})

    def test_restrict_and_rename(self):
        valuation = Valuation({"a": {1}, "b": {2}})
        assert valuation.restrict_labels({"a"}) == Valuation({"a": {1}})
        assert valuation.rename_labels({"a": "z"}) == Valuation({"z": {1}, "b": {2}})

    def test_as_dict_is_a_copy(self):
        valuation = Valuation({"a": {1}})
        mapping = valuation.as_dict()
        mapping["a"] = frozenset({9})
        assert valuation["a"] == frozenset({1})


class TestValuationAlgebra:
    def test_product_unions_positions(self):
        left = Valuation({"a": {1}})
        right = Valuation({"a": {2}, "b": {3}})
        assert left.product(right) == Valuation({"a": {1, 2}, "b": {3}})

    def test_product_operator_alias(self):
        assert (Valuation({"a": {1}}) | Valuation({"b": {2}})) == Valuation({"a": {1}, "b": {2}})

    def test_simple_with(self):
        assert Valuation({"a": {1}}).simple_with(Valuation({"a": {2}}))
        assert not Valuation({"a": {1}}).simple_with(Valuation({"a": {1}}))
        assert Valuation({"a": {1}}).simple_with(Valuation({"b": {1}}))

    def test_product_of_empty_sequence(self):
        assert product_of([]) == Valuation.empty()

    def test_is_simple_product(self):
        assert is_simple_product([Valuation({"a": {1}}), Valuation({"a": {2}})])
        assert not is_simple_product([Valuation({"a": {1}}), Valuation({"a": {1}})])

    @given(small_valuations(), small_valuations())
    def test_product_is_commutative(self, left, right):
        assert left.product(right) == right.product(left)

    @given(small_valuations(), small_valuations(), small_valuations())
    def test_product_is_associative(self, a, b, c):
        assert a.product(b).product(c) == a.product(b.product(c))

    @given(small_valuations())
    def test_empty_is_identity(self, valuation):
        assert valuation.product(Valuation.empty()) == valuation

    @given(small_valuations(), small_valuations())
    def test_product_positions_are_union(self, left, right):
        assert left.product(right).positions() == left.positions() | right.positions()

    @given(small_valuations(), small_valuations())
    def test_simple_product_size_adds(self, left, right):
        if left.simple_with(right):
            assert left.product(right).size() == left.size() + right.size()
        else:
            assert left.product(right).size() < left.size() + right.size()


class TestCachedExtremesAndFastPaths:
    """The cached min/max and the fast singleton/product constructors agree
    with the normalising ``__init__`` (they feed the hot enumeration path)."""

    @given(small_valuations(), small_valuations())
    def test_product_caches_match_recomputation(self, left, right):
        result = left.product(right)
        rebuilt = Valuation(result.as_dict())
        assert result == rebuilt
        assert hash(result) == hash(rebuilt)
        if not result.is_empty():
            assert result.min_position() == min(rebuilt.positions())
            assert result.max_position() == max(rebuilt.positions())

    def test_singleton_caches(self):
        valuation = Valuation.singleton(["a", "b"], 7)
        assert valuation.min_position() == 7
        assert valuation.max_position() == 7
        assert valuation == Valuation({"a": {7}, "b": {7}})
        assert hash(valuation) == hash(Valuation({"a": {7}, "b": {7}}))

    def test_singleton_without_labels_is_empty(self):
        valuation = Valuation.singleton([], 4)
        assert valuation.is_empty()
        with pytest.raises(ValueError):
            valuation.min_position()
        assert valuation.within_window(100, 0)

    @given(small_valuations(), st.integers(0, 12), st.integers(0, 6))
    def test_within_window_uses_cached_min(self, valuation, position, window):
        expected = (
            True
            if valuation.is_empty()
            else position - min(valuation.positions()) <= window
        )
        assert valuation.within_window(position, window) == expected

    def test_product_shares_identical_operand_when_other_empty(self):
        valuation = Valuation({"a": {1, 2}})
        assert valuation.product(Valuation.empty()) is valuation
        assert Valuation.empty().product(valuation) is valuation

    def test_product_with_overlapping_labels_unions(self):
        left = Valuation({"a": {1}})
        right = Valuation({"a": {3}, "b": {2}})
        result = left.product(right)
        assert result["a"] == {1, 3}
        assert result.min_position() == 1
        assert result.max_position() == 3
