"""Tests for the transition dispatch index and the indexed streaming engine.

Covers the compile-once index itself (`repro.core.dispatch`), the predicate
dispatch keys, the differential equivalence of the indexed engine against the
full-scan engine and the naive PCEA reference, the hash-table eviction bound,
and the optional-statistics fast mode.
"""

import pytest

from repro.core.dispatch import TransitionDispatchIndex
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import PCEA, PCEATransition
from repro.core.predicates import (
    AtomUnaryPredicate,
    AttributeFilter,
    LambdaUnaryPredicate,
    RelationPredicate,
    TruePredicate,
    TrueEquality,
)
from repro.cq.query import Atom, Variable
from repro.cq.schema import Tuple
from repro.engine.compiler import compile_pattern
from repro.engine.dsl import atom, conjunction, sequence
from repro.streams.generators import HCQWorkloadGenerator, random_stream

from helpers import QUERY_Q0, SIGMA0, STREAM_S0, example_pcea_p0, star_query

X, Y = Variable("x"), Variable("y")


def two_relation_pcea():
    """states a->b; a fed by T tuples, b fed by S tuples joined trivially."""
    return PCEA(
        states={"a", "b"},
        transitions=[
            PCEATransition(set(), RelationPredicate("T"), {}, {"t"}, "a"),
            PCEATransition({"a"}, RelationPredicate("S"), {"a": TrueEquality()}, {"s"}, "b"),
            PCEATransition(set(), TruePredicate(), {}, {"w"}, "a"),
        ],
        final={"b"},
    )


class TestDispatchRelations:
    def test_relation_predicate(self):
        assert RelationPredicate({"T", "S"}).dispatch_relations() == {"T", "S"}

    def test_atom_predicate(self):
        assert AtomUnaryPredicate(Atom("R", (X, Y))).dispatch_relations() == {"R"}

    def test_attribute_filter(self):
        assert AttributeFilter("R", 0, ">", 5).dispatch_relations() == {"R"}

    def test_true_and_lambda_are_wildcards(self):
        assert TruePredicate().dispatch_relations() is None
        assert LambdaUnaryPredicate(lambda t: True).dispatch_relations() is None

    def test_lambda_with_declared_relations(self):
        pred = LambdaUnaryPredicate(lambda t: True, relations=frozenset({"T"}))
        assert pred.dispatch_relations() == {"T"}

    def test_conjunction_intersects(self):
        pred = RelationPredicate({"T", "S"}) & RelationPredicate({"S", "R"})
        assert pred.dispatch_relations() == {"S"}
        assert (RelationPredicate("T") & TruePredicate()).dispatch_relations() == {"T"}

    def test_disjunction_unions(self):
        pred = RelationPredicate("T") | RelationPredicate("S")
        assert pred.dispatch_relations() == {"T", "S"}
        assert (RelationPredicate("T") | TruePredicate()).dispatch_relations() is None

    def test_compiled_pattern_filters_keep_dispatch_key(self):
        pattern = sequence(
            atom("Buy", "s", "p", filters=[("p", ">", 10)]),
            atom("Sell", "s", "q"),
        )
        pcea = compile_pattern(pattern)
        index = pcea.dispatch_index()
        assert index.describe()["wildcard_transitions"] == 0
        assert {c.transition.unary.dispatch_relations() == frozenset({"Buy"}) or
                c.transition.unary.dispatch_relations() == frozenset({"Sell"})
                for c in index.all_transitions()} == {True}


class TestTransitionDispatchIndex:
    def test_candidates_grouped_by_relation(self):
        pcea = two_relation_pcea()
        index = TransitionDispatchIndex(pcea.transitions, final=pcea.final)
        t_candidates = [c.index for c in index.candidates("T")]
        s_candidates = [c.index for c in index.candidates("S")]
        assert t_candidates == [0, 2]  # the T transition plus the wildcard
        assert s_candidates == [1, 2]

    def test_unknown_relation_gets_only_wildcards(self):
        pcea = two_relation_pcea()
        index = TransitionDispatchIndex(pcea.transitions, final=pcea.final)
        assert [c.index for c in index.candidates("Unknown")] == [2]

    def test_unindexed_mode_returns_all(self):
        pcea = two_relation_pcea()
        index = TransitionDispatchIndex(pcea.transitions, indexed=False, final=pcea.final)
        assert [c.index for c in index.candidates("T")] == [0, 1, 2]

    def test_consumers_reverse_map(self):
        pcea = two_relation_pcea()
        index = TransitionDispatchIndex(pcea.transitions, final=pcea.final)
        consumers = index.consumers("a")
        assert len(consumers) == 1
        compiled, source_id, predicate = consumers[0]
        assert compiled.index == 1
        assert source_id == index.state_ids["a"]
        assert isinstance(predicate, TrueEquality)
        assert index.consumers("b") == ()
        assert index.consumers("missing") == ()

    def test_final_flags_and_state_interning(self):
        pcea = two_relation_pcea()
        index = TransitionDispatchIndex(pcea.transitions, final=pcea.final)
        by_index = {c.index: c for c in index.all_transitions()}
        assert not by_index[0].is_final and not by_index[2].is_final
        assert by_index[1].is_final
        # Ids are dense ints covering exactly the states touched by transitions.
        assert sorted(index.state_ids.values()) == list(range(len(index.state_ids)))

    def test_describe(self):
        pcea = two_relation_pcea()
        info = TransitionDispatchIndex(pcea.transitions, final=pcea.final).describe()
        assert info["transitions"] == 3
        assert info["relations"] == 2
        assert info["wildcard_transitions"] == 1
        assert info["max_candidates"] == 2

    def test_compilers_prebuild_the_index(self):
        assert hcq_to_pcea(QUERY_Q0)._dispatch_index is not None
        assert compile_pattern(conjunction(atom("T", "x"), atom("S", "x", "y")))._dispatch_index is not None

    def test_mismatched_dispatch_final_rejected(self):
        pcea = two_relation_pcea()
        foreign = TransitionDispatchIndex(pcea.transitions, final=set())
        with pytest.raises(ValueError):
            StreamingEvaluator(pcea, window=5, dispatch=foreign)

    def test_dispatch_from_other_automaton_rejected(self):
        # Same final-state set, different transition objects: still refused.
        foreign = TransitionDispatchIndex(two_relation_pcea().transitions, final={"b"})
        with pytest.raises(ValueError):
            StreamingEvaluator(two_relation_pcea(), window=5, dispatch=foreign)

    def test_own_dispatch_accepted(self):
        pcea = two_relation_pcea()
        evaluator = StreamingEvaluator(pcea, window=5, dispatch=pcea.dispatch_index())
        assert evaluator.process(Tuple("T", (1,))) == []


def guarded_branches_pcea(branches):
    """A disjunction of single-atom branches, branch ``b`` guarded by ``t == b``."""
    from repro.engine.dsl import disjunction

    return compile_pattern(
        disjunction(*(atom("E", "t", "y", filters=[("t", "==", b)]) for b in range(branches)))
    )


class TestConstantGuardDispatch:
    def test_guarded_candidates_pruned_by_value(self):
        pcea = guarded_branches_pcea(4)
        index = TransitionDispatchIndex(pcea.transitions, final=pcea.final)
        for value in range(4):
            candidates = index.candidates_for(Tuple("E", (value, 9)))
            assert len(candidates) == 1
            assert candidates[0].guard == (0, value)
        assert list(index.candidates_for(Tuple("E", (99, 9)))) == []
        # Relation-only dispatch still returns every branch.
        assert len(index.candidates("E")) == 4

    def test_guards_disabled_restores_relation_dispatch(self):
        pcea = guarded_branches_pcea(4)
        index = TransitionDispatchIndex(pcea.transitions, final=pcea.final, guards=False)
        assert len(index.candidates_for(Tuple("E", (1, 9)))) == 4
        assert index.describe()["guarded_transitions"] == 0

    def test_short_tuples_skip_guard_buckets(self):
        # A tuple without the guarded attribute cannot satisfy any guarded
        # candidate; the lookup must not raise and must return none of them.
        pcea = guarded_branches_pcea(3)
        index = TransitionDispatchIndex(pcea.transitions, final=pcea.final)
        assert list(index.candidates_for(Tuple("E", ()))) == []

    def test_mixed_guarded_and_unguarded_preserve_order(self):
        from repro.engine.dsl import disjunction

        pcea = compile_pattern(
            disjunction(
                atom("E", "t", "y", filters=[("t", "==", 1)]),
                atom("E", "t", "y"),
                atom("E", "t", "y", filters=[("t", "==", 2)]),
            )
        )
        index = TransitionDispatchIndex(pcea.transitions, final=pcea.final)
        assert [c.index for c in index.candidates_for(Tuple("E", (1, 0)))] == [0, 1]
        assert [c.index for c in index.candidates_for(Tuple("E", (2, 0)))] == [1, 2]
        assert [c.index for c in index.candidates_for(Tuple("E", (9, 0)))] == [1]

    def test_describe_reports_guard_statistics(self):
        pcea = guarded_branches_pcea(5)
        info = TransitionDispatchIndex(pcea.transitions, final=pcea.final).describe()
        assert info["guarded_transitions"] == 5
        assert info["guard_values"] == 5

    @pytest.mark.parametrize("seed", [0, 1])
    def test_guarded_engine_differential(self, seed):
        import random

        pcea = guarded_branches_pcea(6)
        rng = random.Random(seed)
        stream = [Tuple("E", (rng.randrange(8), rng.randrange(4))) for _ in range(120)]
        guarded = StreamingEvaluator(pcea, window=10)
        unguarded = StreamingEvaluator(
            pcea,
            window=10,
            dispatch=TransitionDispatchIndex(pcea.transitions, final=pcea.final, guards=False),
        )
        for tup in stream:
            assert set(guarded.process(tup)) == set(unguarded.process(tup))

    def test_atom_constants_provide_guards(self):
        # A query atom with a constant term guards its transition.
        pcea = hcq_to_pcea(
            __import__("repro.cq.query", fromlist=["ConjunctiveQuery"]).ConjunctiveQuery(
                [Y], [Atom("S", (2, Y))], name="Const"
            )
        )
        index = pcea.dispatch_index()
        guarded = [c for c in index.all_transitions() if c.guard is not None]
        assert guarded and all(c.guard == (0, 2) for c in guarded)
        assert list(index.candidates_for(Tuple("S", (3, 1)))) == []
        assert len(index.candidates_for(Tuple("S", (2, 1)))) == len(index)


class TestIndexedEngineDifferential:
    """The indexed engine, the full-scan engine and the naive reference agree."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("window", [2, 5, 30])
    def test_q0_random_streams(self, seed, window):
        pcea = hcq_to_pcea(QUERY_Q0)
        stream = random_stream(SIGMA0, length=28, domain_size=3, seed=seed).materialise()
        naive = pcea.outputs_upto(stream, len(stream) - 1, window=window)
        indexed = StreamingEvaluator(pcea, window=window)
        full_scan = StreamingEvaluator(pcea, window=window, indexed=False, evict=False)
        for position, tup in enumerate(stream):
            expected = naive[position]
            assert set(indexed.process(tup)) == expected
            assert set(full_scan.process(tup)) == expected

    @pytest.mark.parametrize("seed", [0, 7])
    def test_star_workload_streams(self, seed):
        workload = HCQWorkloadGenerator(arms=2, key_domain=3, seed=seed)
        pcea = hcq_to_pcea(workload.query())
        stream = workload.stream(26).materialise()
        window = 8
        naive = pcea.outputs_upto(stream, len(stream) - 1, window=window)
        indexed = StreamingEvaluator(pcea, window=window)
        for position, tup in enumerate(stream):
            assert set(indexed.process(tup)) == naive[position]

    def test_example_p0_indexed_vs_full_scan(self):
        pcea = example_pcea_p0()
        indexed = StreamingEvaluator(pcea, window=4)
        full_scan = StreamingEvaluator(pcea, window=4, indexed=False, evict=False)
        for tup in STREAM_S0:
            assert set(indexed.process(tup)) == set(full_scan.process(tup))

    @pytest.mark.parametrize("seed", [0, 5])
    def test_against_naive_ccea_reference(self, seed):
        from helpers import example_ccea_c0

        ccea = example_ccea_c0()
        pcea = ccea.to_pcea()
        stream = random_stream(SIGMA0, length=24, domain_size=3, seed=seed).materialise()
        naive = ccea.outputs_upto(stream, len(stream) - 1)
        indexed = StreamingEvaluator(pcea, window=len(stream) + 1)
        for position, tup in enumerate(stream):
            assert set(indexed.process(tup)) == naive[position]


class TestHashEviction:
    def test_long_stream_small_window_is_bounded(self):
        workload = HCQWorkloadGenerator(arms=2, key_domain=5_000, seed=3)
        pcea = hcq_to_pcea(workload.query())
        stream = workload.stream(2_500).materialise()
        window = 32
        evicting = StreamingEvaluator(pcea, window=window)
        unbounded = StreamingEvaluator(pcea, window=window, evict=False)
        max_evicting = 0
        for tup in stream:
            assert set(evicting.process(tup)) == set(unbounded.process(tup))
            max_evicting = max(max_evicting, evicting.hash_table_size())
        # High-cardinality keys: without eviction the table keeps one entry
        # per key ever seen; with eviction it tracks the active window only.
        assert unbounded.hash_table_size() > 1_000
        assert max_evicting <= 4 * (window + 1)
        assert evicting.evicted > 1_000
        assert unbounded.evicted == 0

    def test_eviction_does_not_lose_live_entries(self):
        # A match whose parts are exactly window-apart must still be found.
        pcea = hcq_to_pcea(star_query(2))
        window = 3
        evaluator = StreamingEvaluator(pcea, window=window)
        evaluator.process(Tuple("A1", (7, 0)))
        for position in range(1, window):
            evaluator.process(Tuple("A1", (99, position)))  # unrelated filler
        outputs = evaluator.process(Tuple("A2", (7, 1)))
        assert len(outputs) == 1

    def test_expired_entries_are_dropped_next_position(self):
        pcea = hcq_to_pcea(star_query(2))
        window = 2
        evaluator = StreamingEvaluator(pcea, window=window)
        evaluator.process(Tuple("A1", (1, 0)))
        size_after_insert = evaluator.hash_table_size()
        assert size_after_insert > 0
        for position in range(window + 2):
            evaluator.process(Tuple("B", (0,)))  # relation unknown to the PCEA
        assert evaluator.evicted >= size_after_insert
        assert evaluator.hash_table_size() == 0


class TestOptionalStatistics:
    def test_fast_mode_skips_counters_but_not_outputs(self):
        pcea = example_pcea_p0()
        counting = StreamingEvaluator(pcea, window=10)
        fast = StreamingEvaluator(pcea, window=10, collect_stats=False)
        for tup in STREAM_S0:
            assert set(counting.process(tup)) == set(fast.process(tup))
        assert counting.stats.transitions_scanned > 0
        assert fast.stats.transitions_scanned == 0
        assert fast.stats.outputs_enumerated == 0

    def test_run_without_collection_disables_counting(self):
        evaluator = StreamingEvaluator(example_pcea_p0(), window=10)
        evaluator.run(STREAM_S0, collect=False)
        assert evaluator.stats.transitions_scanned == 0
        # The flag is restored afterwards: explicit updates count again.
        evaluator.update(Tuple("T", (9,)))
        assert evaluator.stats.transitions_scanned > 0

    def test_run_without_collection_can_opt_back_in(self):
        evaluator = StreamingEvaluator(example_pcea_p0(), window=10)
        evaluator.run(STREAM_S0, collect=False, stats=True)
        assert evaluator.stats.transitions_scanned > 0

    def test_dispatch_info_exposed(self):
        evaluator = StreamingEvaluator(example_pcea_p0(), window=10)
        info = evaluator.dispatch_info()
        assert info["transitions"] == 3
        assert info["relations"] == 3


class TestOdometerEnumeration:
    """The iterative cross-product odometer matches a brute-force reference."""

    def test_multi_child_product_equivalence(self):
        import itertools

        from repro.core.datastructure import DataStructure

        ds = DataStructure(window=100)
        # Three children, each a union of several leaves, under one product node.
        children = []
        for child_id in range(3):
            leaves = [
                ds.extend([f"c{child_id}"], 1 + child_id * 3 + k, []) for k in range(3)
            ]
            union = leaves[0]
            for leaf in leaves[1:]:
                union = ds.union(union, leaf)
            children.append(union)
        root = ds.extend(["root"], 50, children)
        got = set(ds.enumerate(root, 50))
        child_sets = [set(ds.enumerate(child, 50)) for child in children]
        expected = set()
        from repro.valuation import Valuation, product_of

        base = Valuation.singleton(["root"], 50)
        for combo in itertools.product(*child_sets):
            expected.add(product_of([base, *combo]))
        assert got == expected
        assert len(got) == 27

    def test_window_pruning_in_product(self):
        from repro.core.datastructure import DataStructure

        ds = DataStructure(window=10)
        old_leaf = ds.extend(["a"], 0, [])
        new_leaf = ds.extend(["a"], 20, [])
        union = ds.union(old_leaf, new_leaf)
        root = ds.extend(["root"], 25, [union])
        # Only the combination through the fresh leaf is inside the window.
        outputs = list(ds.enumerate(root, 25))
        assert len(outputs) == 1
        assert outputs[0].min_position() == 20
