"""Tests for the measurement harness (repro.bench.harness)."""

from repro.bench.harness import (
    MeasurementSeries,
    format_table,
    geometric_sweep,
    measure_engine_run,
    measure_enumeration_delays,
    measure_update_times,
    summarize,
)
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.baselines.naive import NaiveRecomputeEngine
from repro.streams.generators import HCQWorkloadGenerator


def small_workload():
    workload = HCQWorkloadGenerator(arms=2, key_domain=3, seed=1)
    return workload.query(), workload.stream(40).materialise()


class TestMeasurementSeries:
    def test_add_and_rows(self):
        series = MeasurementSeries("test")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.as_rows() == [(1, 10.0), (2, 20.0)]
        assert series.ratios() == [2.0]

    def test_ratio_with_zero(self):
        series = MeasurementSeries("test", [1, 2], [0.0, 5.0])
        assert series.ratios() == [float("inf")]


class TestMeasurementHelpers:
    def test_measure_engine_run(self):
        query, stream = small_workload()
        engine = StreamingEvaluator(hcq_to_pcea(query), window=10)
        result = measure_engine_run(engine, stream)
        assert result["tuples"] == len(stream)
        assert result["total_seconds"] >= 0
        assert result["outputs"] >= 0

    def test_measure_update_times_streaming(self):
        query, stream = small_workload()
        engine = StreamingEvaluator(hcq_to_pcea(query), window=10)
        times = measure_update_times(engine, stream, warmup=5)
        assert len(times) == len(stream) - 5
        assert all(t >= 0 for t in times)

    def test_measure_update_times_baseline(self):
        query, stream = small_workload()
        engine = NaiveRecomputeEngine(query, window=10)
        times = measure_update_times(engine, stream)
        assert len(times) == len(stream)

    def test_measure_enumeration_delays(self):
        query, stream = small_workload()
        engine = StreamingEvaluator(hcq_to_pcea(query), window=15)
        measurements = measure_enumeration_delays(engine, stream)
        for size, elapsed in measurements:
            assert size > 0
            assert elapsed >= 0

    def test_summarize(self):
        stats = summarize([3.0, 1.0, 2.0])
        assert stats["mean"] == 2.0
        assert stats["median"] == 2.0
        assert stats["max"] == 3.0
        assert summarize([]) == {"mean": 0.0, "median": 0.0, "p99": 0.0, "max": 0.0}

    def test_geometric_sweep(self):
        assert geometric_sweep(4, 64) == [4, 8, 16, 32, 64]
        assert geometric_sweep(3, 30, factor=3) == [3, 9, 27]

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bb" in lines[0]
        assert "40" in lines[-1]

    def test_format_table_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text
