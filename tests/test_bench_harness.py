"""Tests for the measurement harness (repro.bench.harness)."""

import gc

import pytest

from repro.bench.harness import (
    MeasurementSeries,
    collect_engine_counters,
    format_table,
    gc_controlled,
    geometric_sweep,
    measure_engine_run,
    measure_enumeration_delays,
    measure_update_times,
    summarize,
    validate_benchmark_payload,
)
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.baselines.naive import NaiveRecomputeEngine
from repro.streams.generators import HCQWorkloadGenerator


def small_workload():
    workload = HCQWorkloadGenerator(arms=2, key_domain=3, seed=1)
    return workload.query(), workload.stream(40).materialise()


class TestMeasurementSeries:
    def test_add_and_rows(self):
        series = MeasurementSeries("test")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.as_rows() == [(1, 10.0), (2, 20.0)]
        assert series.ratios() == [2.0]

    def test_ratio_with_zero(self):
        series = MeasurementSeries("test", [1, 2], [0.0, 5.0])
        assert series.ratios() == [float("inf")]


class TestMeasurementHelpers:
    def test_measure_engine_run(self):
        query, stream = small_workload()
        engine = StreamingEvaluator(hcq_to_pcea(query), window=10)
        result = measure_engine_run(engine, stream)
        assert result["tuples"] == len(stream)
        assert result["total_seconds"] >= 0
        assert result["outputs"] >= 0

    def test_measure_update_times_streaming(self):
        query, stream = small_workload()
        engine = StreamingEvaluator(hcq_to_pcea(query), window=10)
        times = measure_update_times(engine, stream, warmup=5)
        assert len(times) == len(stream) - 5
        assert all(t >= 0 for t in times)

    def test_measure_update_times_baseline(self):
        query, stream = small_workload()
        engine = NaiveRecomputeEngine(query, window=10)
        times = measure_update_times(engine, stream)
        assert len(times) == len(stream)

    def test_measure_update_times_gc_controlled(self):
        query, stream = small_workload()
        engine = StreamingEvaluator(hcq_to_pcea(query), window=10)
        assert gc.isenabled()
        times = measure_update_times(engine, stream, gc_control=True)
        assert len(times) == len(stream)
        assert gc.isenabled()  # restored after the measurement

    def test_collect_engine_counters_includes_arena_memory(self):
        query, stream = small_workload()
        engine = StreamingEvaluator(hcq_to_pcea(query), window=10)
        for tup in stream:
            engine.process(tup)
        counters = collect_engine_counters(engine)
        assert counters["arena"] == 1.0
        assert counters["arena_live_nodes"] >= 0
        assert counters["arena_slabs"] >= 1.0


class TestGcControlled:
    def test_disables_and_restores(self):
        assert gc.isenabled()
        with gc_controlled() as enabled:
            assert not enabled
            assert not gc.isenabled()
        assert gc.isenabled()

    def test_collect_only_keeps_collector_on(self):
        with gc_controlled(disable=False) as enabled:
            assert enabled
            assert gc.isenabled()
        assert gc.isenabled()

    def test_restores_disabled_state(self):
        gc.disable()
        try:
            with gc_controlled():
                pass
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_measure_enumeration_delays(self):
        query, stream = small_workload()
        engine = StreamingEvaluator(hcq_to_pcea(query), window=15)
        measurements = measure_enumeration_delays(engine, stream)
        for size, elapsed in measurements:
            assert size > 0
            assert elapsed >= 0

    def test_summarize(self):
        stats = summarize([3.0, 1.0, 2.0])
        assert stats["mean"] == 2.0
        assert stats["median"] == 2.0
        assert stats["max"] == 3.0
        assert summarize([]) == {"mean": 0.0, "median": 0.0, "p99": 0.0, "max": 0.0}

    def test_geometric_sweep(self):
        assert geometric_sweep(4, 64) == [4, 8, 16, 32, 64]
        assert geometric_sweep(3, 30, factor=3) == [3, 9, 27]

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [30, 40]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bb" in lines[0]
        assert "40" in lines[-1]

    def test_format_table_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text


class TestBenchmarkJsonSchema:
    """write_benchmark_json validates the shared BENCH_*.json schema."""

    VALID = {"benchmark": "example", "summary": {"speedup": 2.0}, "rows": [1, 2]}

    def test_valid_payload_written(self, tmp_path):
        import json

        from repro.bench.harness import write_benchmark_json

        path = tmp_path / "bench.json"
        write_benchmark_json(str(path), self.VALID)
        assert json.loads(path.read_text())["benchmark"] == "example"

    def test_missing_benchmark_name_rejected(self, tmp_path):
        import pytest

        from repro.bench.harness import validate_benchmark_payload, write_benchmark_json

        for broken in (
            {"summary": {}},
            {"benchmark": "", "summary": {}},
            {"benchmark": 7, "summary": {}},
        ):
            with pytest.raises(ValueError):
                validate_benchmark_payload(broken)
            with pytest.raises(ValueError):
                write_benchmark_json(str(tmp_path / "x.json"), broken)
            assert not (tmp_path / "x.json").exists()

    def test_missing_summary_rejected(self):
        import pytest

        from repro.bench.harness import validate_benchmark_payload

        with pytest.raises(ValueError):
            validate_benchmark_payload({"benchmark": "b"})
        with pytest.raises(ValueError):
            validate_benchmark_payload({"benchmark": "b", "summary": [1]})

    def test_non_serialisable_and_non_mapping_rejected(self):
        import pytest

        from repro.bench.harness import validate_benchmark_payload

        with pytest.raises(ValueError):
            validate_benchmark_payload([("benchmark", "b")])
        with pytest.raises(ValueError):
            validate_benchmark_payload(
                {"benchmark": "b", "summary": {}, "bad": object()}
            )
        with pytest.raises(ValueError):
            validate_benchmark_payload({"benchmark": "b", "summary": {}, 3: "x"})

    def test_gc_enabled_must_be_bool(self):
        payload = {"benchmark": "x", "summary": {}, "gc_enabled": "no"}
        with pytest.raises(ValueError, match="gc_enabled"):
            validate_benchmark_payload(payload)
        payload["gc_enabled"] = False
        validate_benchmark_payload(payload)

    def test_checked_in_benchmarks_pass_validation(self):
        import glob
        import json
        import os

        from repro.bench.harness import validate_benchmark_payload

        root = os.path.join(os.path.dirname(__file__), os.pardir)
        paths = glob.glob(os.path.join(root, "BENCH_*.json"))
        assert paths, "expected checked-in BENCH_*.json files"
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                validate_benchmark_payload(json.load(handle))
