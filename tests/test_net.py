"""The network ingestion layer (`repro.net`).

Covers, per the serving contract:

* the shared frame codec (`repro.runtime.frames`) — the shard layer's
  import path re-exports it unchanged, and the byte-stream reassembler
  rejects oversized prefixes *before* buffering a body;
* differential serving — a server-fed engine is bit-identical to direct
  `process_many` on the same interleaved tuple order, for the single,
  multi and sharded backends, including mid-stream subscribe/unsubscribe
  churn and clients disconnecting with unflushed subscriptions;
* protocol robustness — truncated, oversized, garbage and malformed
  frames close that client with a protocol-error reply and never kill the
  server or desync other clients (hypothesis-fuzzed);
* flow control — the ingest queue and per-subscriber outboxes stay at
  their configured caps under pressure (hard bounds, not averages), with
  shedding counted and the configured policy applied;
* observability — the `repro_ingest_*` / `repro_net_*` series and `batch`
  spans surface through the standard `Observer`, including `--metrics-file`
  under the `serve` CLI.
"""

from __future__ import annotations

import io
import socket
import struct
import threading
import time
from hashlib import sha256

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import (
    build_net_client_parser,
    build_serve_parser,
    main,
    run_multi,
    run_net_client,
)
from repro.core.evaluation import StreamingEvaluator
from repro.cq.schema import Tuple
from repro.multi import MultiQueryEngine, compile_query
from repro.net import IngestClient, IngestServer, NetClientError, ServerThread, SingleEngineFeed
from repro.net.protocol import validate_client_message
from repro.runtime import frames as shared_frames
from repro.runtime.frames import (
    FrameAssembler,
    FrameProtocolError,
    HEADER_SIZE,
    encode_frame,
    frame_length,
)
from repro.shard import ShardedEngine
from repro.shard import frames as shard_frames

QUERY_A = "QA(x, y) <- T(x), S(x, y), R(x, y)"
QUERY_B = "QB(x) <- T(x), R(x, 1)"
WINDOW = 16


def star_stream(length: int, seed: int = 11, domain: int = 5):
    """A deterministic mixed T/S/R stream that produces matches."""
    import random

    rng = random.Random(seed)
    stream = []
    for _ in range(length):
        relation = rng.choice(("T", "S", "R"))
        if relation == "T":
            stream.append(Tuple("T", (rng.randrange(domain),)))
        else:
            stream.append(Tuple(relation, (rng.randrange(domain), rng.randrange(domain))))
    return stream


def output_digest(per_tuple_outputs, base: int = 0) -> str:
    """The canonical digest the benchmarks use: position|qid|sorted(vals)."""
    digest = sha256()
    for offset, outputs in enumerate(per_tuple_outputs):
        for qid in sorted(outputs):
            valuations = outputs[qid]
            if valuations:
                digest.update(
                    f"{base + offset}|{qid}|{sorted(map(str, valuations))}".encode()
                )
    return digest.hexdigest()


def matches_digest(matches) -> str:
    """Same digest computed from a client's ``{handle: [(pos, vals)]}``."""
    flat = []
    for qid, batches in matches.items():
        for position, valuations in batches:
            if valuations:
                flat.append((position, qid, sorted(map(str, valuations))))
    digest = sha256()
    for position, qid, rendered in sorted(flat):
        digest.update(f"{position}|{qid}|{rendered}".encode())
    return digest.hexdigest()


def direct_digest(queries, stream, window: int = WINDOW) -> str:
    """Digest of a direct in-process MultiQueryEngine run over ``stream``."""
    engine = MultiQueryEngine()
    for query in queries:
        engine.register(query, window)
    return output_digest(engine.process_many(stream))


# --------------------------------------------------------------------------
class TestSharedCodec:
    def test_shard_module_reexports_shared_codec(self):
        assert shard_frames.encode_frame is shared_frames.encode_frame
        assert shard_frames.decode_frame is shared_frames.decode_frame
        assert shard_frames.FrameChannel is shared_frames.FrameChannel
        assert shard_frames.MAX_FRAME_BYTES == shared_frames.MAX_FRAME_BYTES

    def test_assembler_reassembles_odd_chunks(self):
        messages = [("a", 1), ("b", list(range(50))), ("c", None)]
        blob = b"".join(encode_frame(m) for m in messages)
        for chunk_size in (1, 3, 7, len(blob)):
            assembler = FrameAssembler()
            decoded = []
            for start in range(0, len(blob), chunk_size):
                decoded.extend(assembler.feed(blob[start : start + chunk_size]))
            assert decoded == messages
            assert assembler.frames_received == len(messages)
            assert assembler.bytes_received == len(blob)
            assert assembler.pending() == 0

    def test_assembler_rejects_oversize_before_buffering_body(self):
        assembler = FrameAssembler(max_frame_bytes=64)
        header = struct.pack("!I", 1 << 20)
        with pytest.raises(FrameProtocolError, match="exceeds the cap"):
            list(assembler.feed(header))
        # Nothing of the claimed megabyte was buffered (just the header).
        assert assembler.pending() <= HEADER_SIZE

    def test_assembler_rejects_garbage_body(self):
        frame = struct.pack("!I", 4) + b"\xde\xad\xbe\xef"
        with pytest.raises(FrameProtocolError, match="does not unpickle"):
            list(FrameAssembler().feed(frame))

    def test_frame_length_validates_header_size(self):
        with pytest.raises(FrameProtocolError):
            frame_length(b"\x00")
        assert frame_length(struct.pack("!I", 17)) == 17

    def test_truncated_frame_stays_pending(self):
        frame = encode_frame(("hello", 1))
        assembler = FrameAssembler()
        assert list(assembler.feed(frame[:-2])) == []
        assert assembler.pending() == len(frame) - HEADER_SIZE - 2
        assert list(assembler.feed(frame[-2:])) == [("hello", 1)]


class TestProtocolValidation:
    @pytest.mark.parametrize(
        "message",
        [
            "not a tuple",
            (),
            ("launch", 1),
            ("subscribe", 7, 10, None),
            ("subscribe", "Q(x) <- A(x)", "big", None),
            ("subscribe", "Q(x) <- A(x)", 10, 4),
            ("unsubscribe", "zero"),
            ("unsubscribe", True),
            ("ingest", "s", [Tuple("A", (1,))]),
            ("ingest", 0, []),
            ("ingest", 0, [("A", (1,))]),
            ("ingest", 0, [Tuple("A", ([1, 2],))]),
            ("ping",),
            ("hello", "one"),
        ],
    )
    def test_malformed_messages_rejected(self, message):
        with pytest.raises(FrameProtocolError):
            validate_client_message(message)

    def test_wellformed_messages_pass(self):
        validate_client_message(("hello", 1))
        validate_client_message(("subscribe", QUERY_A, 10, "qa"))
        validate_client_message(("subscribe", None, None, None))
        validate_client_message(("unsubscribe", 3))
        validate_client_message(("ingest", 0, [Tuple("A", (1, "x"))]))
        validate_client_message(("ping", "token"))


# --------------------------------------------------------------------------
class TestRoundTrip:
    def test_subscribe_ingest_ack_matches(self):
        stream = star_stream(200)
        engine = MultiQueryEngine()
        with ServerThread(engine) as st:
            with IngestClient(st.host, st.port) as client:
                version, kind = client.hello()
                assert version == 1 and kind == "MultiQueryEngine"
                handle_id, name, window = client.subscribe(QUERY_A, WINDOW, name="qa")
                assert (handle_id, name, window) == (0, "qa", WINDOW)
                seq = client.ingest(stream)
                base, count = client.wait_ack(seq)
                assert (base, count) == (0, len(stream))
                assert client.ping() == len(stream) - 1
                served = matches_digest(client.matches)
        assert served == direct_digest([QUERY_A], stream)

    def test_acks_reconstruct_interleaved_order(self):
        stream = star_stream(100)
        with ServerThread(MultiQueryEngine()) as st:
            with IngestClient(st.host, st.port) as client:
                client.subscribe(QUERY_A, WINDOW)
                seqs = [client.ingest(stream[i : i + 7]) for i in range(0, 100, 7)]
                acks = [client.wait_ack(seq) for seq in seqs]
        # Frames were assigned contiguous, ordered position ranges.
        expected_base = 0
        for (base, count), start in zip(acks, range(0, 100, 7)):
            assert base == expected_base
            assert count == len(stream[start : start + 7])
            expected_base += count

    def test_shared_subscription_fans_out_to_both_clients(self):
        stream = star_stream(150)
        expected = direct_digest([QUERY_A], stream)
        with ServerThread(MultiQueryEngine()) as st:
            with IngestClient(st.host, st.port) as a, IngestClient(st.host, st.port) as b:
                ha, _, _ = a.subscribe(QUERY_A, WINDOW)
                hb, _, _ = b.subscribe(QUERY_A, WINDOW)
                assert ha == hb  # deduped onto one engine handle
                a.ingest_all(stream, frame_size=32)
                b.ping()  # flush barrier: a's acks don't order b's matches
                assert matches_digest(a.matches) == expected
                assert matches_digest(b.matches) == expected
            # Both subscribers gone: the engine handle was released.
            time.sleep(0.2)
            assert st.server.observe()["subscriptions"] == 0

    def test_unsubscribe_stops_matches_and_releases_handle(self):
        stream = star_stream(120)
        with ServerThread(MultiQueryEngine()) as st:
            with IngestClient(st.host, st.port) as client:
                handle_id, _, _ = client.subscribe(QUERY_A, WINDOW)
                client.ingest_all(stream[:60], frame_size=20)
                first_half = dict(client.matches)
                client.unsubscribe(handle_id)
                client.ingest_all(stream[60:], frame_size=20)
                client.ping()
                assert client.matches == first_half  # nothing after unsubscribe
        # Unknown-handle unsubscribe is refused, not fatal.
        with ServerThread(MultiQueryEngine()) as st:
            with IngestClient(st.host, st.port) as client:
                with pytest.raises(NetClientError, match="refused"):
                    client.unsubscribe(99)
                client.subscribe(QUERY_A, WINDOW)  # connection still usable

    def test_bad_query_refused_without_closing(self):
        with ServerThread(MultiQueryEngine()) as st:
            with IngestClient(st.host, st.port) as client:
                with pytest.raises(NetClientError, match="refused"):
                    client.subscribe("this is not a query", 10)
                with pytest.raises(NetClientError, match="refused"):
                    client.subscribe(QUERY_A, WINDOW)
                    client.subscribe(QUERY_A, WINDOW)  # duplicate
                assert client.ping() == -1  # still connected, nothing ingested


# --------------------------------------------------------------------------
ENGINE_KINDS = ("single", "multi", "sharded")


def make_backend(kind: str):
    """(feed, close) for each engine backend the server can drive."""
    if kind == "single":
        pcea = compile_query(QUERY_A)
        return SingleEngineFeed(StreamingEvaluator(pcea, window=WINDOW)), lambda: None
    if kind == "multi":
        return MultiQueryEngine(), lambda: None
    engine = ShardedEngine(2, start_method="inline")
    return engine, engine.close


class TestDifferential:
    @pytest.mark.parametrize("kind", ENGINE_KINDS)
    def test_served_identical_to_direct(self, kind):
        stream = star_stream(300)
        engine, close = make_backend(kind)
        try:
            with ServerThread(engine, max_batch=64) as st:
                with IngestClient(st.host, st.port) as client:
                    if kind == "single":
                        client.subscribe(None, None)
                    else:
                        client.subscribe(QUERY_A, WINDOW)
                    client.ingest_all(stream, frame_size=17)
                    served = matches_digest(client.matches)
        finally:
            close()
        # Handle id 0 on every backend, so the digests are comparable.
        assert served == direct_digest([QUERY_A], stream)

    @pytest.mark.parametrize("kind", ("multi", "sharded"))
    def test_mid_stream_subscription_churn(self, kind):
        """Register/unregister mid-stream == the same churn done directly."""
        stream = star_stream(240)
        engine, close = make_backend(kind)
        try:
            with ServerThread(engine, max_batch=32) as st:
                with IngestClient(st.host, st.port) as client:
                    ha, _, _ = client.subscribe(QUERY_A, WINDOW)
                    client.ingest_all(stream[:80], frame_size=16)
                    hb, _, _ = client.subscribe(QUERY_B, WINDOW)
                    client.ingest_all(stream[80:160], frame_size=16)
                    client.unsubscribe(ha)
                    client.ingest_all(stream[160:], frame_size=16)
                    client.ping()
                    served = matches_digest(client.matches)
        finally:
            close()
        direct = MultiQueryEngine()
        handle_a = direct.register(QUERY_A, WINDOW)
        outputs = direct.process_many(stream[:80])
        direct.register(QUERY_B, WINDOW)
        outputs += direct.process_many(stream[80:160])
        direct.unregister(handle_a)
        # Matches for A delivered up to the unregister; B keeps flowing.
        outputs += direct.process_many(stream[160:])
        assert served == output_digest(outputs)

    def test_concurrent_clients_reconstructed_order(self):
        """8 concurrent ingest clients; acks rebuild the interleave exactly."""
        num_clients, per_client = 8, 120
        streams = [star_stream(per_client, seed=100 + i) for i in range(num_clients)]
        engine = MultiQueryEngine()
        with ServerThread(engine, max_batch=48) as st:
            collector = IngestClient(st.host, st.port)
            collector.subscribe(QUERY_A, WINDOW)
            collector.subscribe(QUERY_B, WINDOW)
            acks_per_client = [[] for _ in range(num_clients)]
            errors = []

            def pump(index: int) -> None:
                try:
                    with IngestClient(st.host, st.port) as client:
                        seqs = [
                            client.ingest(streams[index][start : start + 10])
                            for start in range(0, per_client, 10)
                        ]
                        for frame_index, seq in enumerate(seqs):
                            base, count = client.wait_ack(seq)
                            acks_per_client[index].append((base, count, frame_index))
                except Exception as exc:  # pragma: no cover - surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=pump, args=(i,)) for i in range(num_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            # Every ingester acked ⇒ every match frame is already in the
            # collector's outbox; ping flushes it through.
            collector.ping()
            served = matches_digest(collector.matches)
            collector.close()

        # Rebuild the global interleaved order from the acks.
        total = num_clients * per_client
        interleaved = [None] * total
        for index, acks in enumerate(acks_per_client):
            for base, count, frame_index in acks:
                chunk = streams[index][frame_index * 10 : frame_index * 10 + count]
                interleaved[base : base + count] = chunk
        assert None not in interleaved
        assert served == direct_digest([QUERY_A, QUERY_B], interleaved)

    def test_disconnect_with_unflushed_subscription(self):
        """A subscriber vanishing mid-stream never disturbs other clients."""
        stream = star_stream(300)
        engine = MultiQueryEngine()
        with ServerThread(engine, max_batch=32) as st:
            keeper = IngestClient(st.host, st.port)
            keeper.subscribe(QUERY_A, WINDOW)
            quitter = IngestClient(st.host, st.port)
            quitter.subscribe(QUERY_B, WINDOW)
            keeper.ingest_all(stream[:150], frame_size=25)
            # Abrupt close: no unsubscribe, matches still queued server-side.
            quitter.close()
            keeper.ingest_all(stream[150:], frame_size=25)
            keeper.ping()
            served = matches_digest(keeper.matches)
            deadline = time.time() + 5
            while time.time() < deadline and st.server.observe()["subscriptions"] > 1:
                time.sleep(0.05)
            assert st.server.observe()["subscriptions"] == 1  # B was released
        # Per-query outputs are independent, so the keeper's view equals a
        # direct single-query run regardless of the churn timing.
        assert served == direct_digest([QUERY_A], stream)


# --------------------------------------------------------------------------
class _RawConnection:
    """A bare socket speaking raw bytes at the server (for malformed input)."""

    def __init__(self, host: str, port: int):
        self.sock = socket.create_connection((host, port), timeout=10)

    def send(self, data: bytes) -> None:
        self.sock.sendall(data)

    def expect_error_close(self) -> str:
        """Read to EOF; assert exactly one ('error', reason) frame arrived."""
        data = b""
        try:
            while True:
                chunk = self.sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        except OSError:
            pass
        messages = list(FrameAssembler().feed(data))
        assert len(messages) == 1 and messages[0][0] == "error", messages
        return messages[0][1]

    def closed_by_server(self) -> bool:
        try:
            self.sock.settimeout(5)
            while True:
                if not self.sock.recv(65536):
                    return True
        except OSError:
            return False

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class TestRobustness:
    @pytest.fixture()
    def server(self):
        with ServerThread(MultiQueryEngine(), max_frame_bytes=1 << 16) as st:
            yield st

    def _assert_still_serving(self, st) -> None:
        """The canary: a fresh client completes a full round trip.

        The engine is stateful across canary calls (the fuzz test shares one
        server), so this asserts the protocol round trip — subscribe, acked
        ingest, position barrier — not a from-scratch digest; differential
        correctness is covered on fresh servers above.
        """
        with IngestClient(st.host, st.port) as client:
            client.subscribe(QUERY_A, WINDOW)
            base, count = client.ingest_all(star_stream(30), frame_size=10)
            assert count == 10
            assert client.ping() == base + count - 1

    def test_garbage_body_closes_with_error(self, server):
        conn = _RawConnection(server.host, server.port)
        conn.send(struct.pack("!I", 8) + b"\x00" * 8)
        assert "unpickle" in conn.expect_error_close()
        conn.close()
        self._assert_still_serving(server)

    def test_oversized_prefix_closes_with_error(self, server):
        conn = _RawConnection(server.host, server.port)
        conn.send(struct.pack("!I", (1 << 16) + 1))
        assert "exceeds the cap" in conn.expect_error_close()
        conn.close()
        self._assert_still_serving(server)

    def test_truncated_frame_then_eof(self, server):
        conn = _RawConnection(server.host, server.port)
        conn.send(struct.pack("!I", 100) + b"only ten b")
        conn.close()  # peer vanishes mid-frame
        self._assert_still_serving(server)

    def test_unknown_command_closes_with_error(self, server):
        conn = _RawConnection(server.host, server.port)
        conn.send(encode_frame(("launch_missiles", 1, 2)))
        assert "unknown command" in conn.expect_error_close()
        conn.close()
        self._assert_still_serving(server)

    def test_non_tuple_message_closes_with_error(self, server):
        conn = _RawConnection(server.host, server.port)
        conn.send(encode_frame({"command": "ingest"}))
        assert "not a command tuple" in conn.expect_error_close()
        conn.close()
        self._assert_still_serving(server)

    def test_malformed_peer_never_desyncs_others(self, server):
        """A client's stream positions are unaffected by another's garbage."""
        with IngestClient(server.host, server.port) as client:
            client.subscribe(QUERY_A, WINDOW)
            stream = star_stream(90)
            seq = client.ingest(stream[:30])
            base, _ = client.wait_ack(seq)
            assert base == 0
            conn = _RawConnection(server.host, server.port)
            conn.send(b"\xff\xff\xff\xff")  # oversized prefix
            conn.expect_error_close()
            conn.close()
            seq = client.ingest(stream[30:])
            base, count = client.wait_ack(seq)
            assert (base, count) == (30, 60)
            assert matches_digest(client.matches) == direct_digest([QUERY_A], stream)

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(blob=st.binary(min_size=1, max_size=512))
    def test_fuzzed_bytes_never_kill_the_server(self, server, blob):
        conn = _RawConnection(server.host, server.port)
        conn.send(blob)
        conn.close()
        self._assert_still_serving(server)

    def test_ingest_frame_bigger_than_queue_is_rejected(self):
        with ServerThread(MultiQueryEngine(), max_queue=16) as st:
            with IngestClient(st.host, st.port) as client:
                client.ingest(star_stream(17))
                with pytest.raises(NetClientError, match="queue bound"):
                    client.ping()


# --------------------------------------------------------------------------
class _SlowFeed:
    """Wrap an engine feed so every batch takes ``delay`` seconds — lets the
    readers outrun the driver and push the ingest queue to its cap."""

    def __init__(self, inner, delay: float):
        self._inner = inner
        self.delay = delay
        self.batch_sizes = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def position(self):
        return self._inner.position

    def ingest_batch(self, tuples):
        self.batch_sizes.append(len(tuples))
        time.sleep(self.delay)
        return self._inner.ingest_batch(tuples)


class TestFlowControl:
    def test_ingest_queue_holds_its_cap(self):
        """Backpressure: the queue never exceeds max_queue, reaches it under
        pressure, and not one tuple is lost while the socket is throttled."""
        max_queue, frame_size, frames = 64, 16, 50
        stream = star_stream(frame_size * frames)
        engine = _SlowFeed(MultiQueryEngine(), delay=0.004)
        with ServerThread(engine, max_batch=32, max_queue=max_queue) as st:
            with IngestClient(st.host, st.port) as client:
                client.subscribe(QUERY_A, WINDOW)
                seqs = [
                    client.ingest(stream[i * frame_size : (i + 1) * frame_size])
                    for i in range(frames)
                ]
                acks = [client.wait_ack(seq) for seq in seqs]
                served = matches_digest(client.matches)
            time.sleep(0.1)
            summary = st.server.observe()
        # Hard bound held, and genuinely exercised.
        assert summary["peak_queue_depth"] <= max_queue
        assert summary["peak_queue_depth"] > max_queue - frame_size
        # Nothing lost or reordered under throttling.
        assert acks == [(i * frame_size, frame_size) for i in range(frames)]
        assert served == direct_digest([QUERY_A], stream)

    def _shedding_run(self, policy: str):
        """One ingester + one subscriber that never reads its socket."""
        max_outbox = 16
        stream = [Tuple("A", (i % 3,)) for i in range(4000)]
        engine = MultiQueryEngine()
        st = ServerThread(
            engine,
            max_batch=4,
            max_outbox=max_outbox,
            shed_policy=policy,
            sndbuf=4096,
            write_buffer_limit=4096,
        )
        with st:
            slow = IngestClient(st.host, st.port, rcvbuf=4096)
            slow.subscribe("QS(x) <- A(x)", 4)
            with IngestClient(st.host, st.port) as feeder:
                feeder.ingest_all(stream, frame_size=4)
            deadline = time.time() + 10
            while time.time() < deadline:
                summary = st.server.observe()
                # Wait for shedding to engage and the feeder's disconnect
                # to be reaped, so ``clients`` counts only the laggard.
                if summary["shed"] > 0 and summary["clients"] <= 1:
                    break
                time.sleep(0.05)
            summary = st.server.observe()
            yield st, slow, summary, max_outbox
        slow.close()

    def test_slow_subscriber_outbox_capped_and_shed_drop(self):
        run = self._shedding_run("drop")
        st, slow, summary, max_outbox = next(run)
        assert summary["shed"] > 0
        assert summary["peak_outbox"] <= max_outbox
        # Drop policy: the connection survives the shedding.
        assert summary["clients"] == 1
        metrics = st.server.metrics.collect()
        assert metrics["repro_net_shed_total"] == summary["shed"]
        for _ in run:
            pass

    def test_slow_subscriber_disconnected_under_disconnect_policy(self):
        run = self._shedding_run("disconnect")
        st, slow, summary, max_outbox = next(run)
        assert summary["shed"] > 0
        assert summary["peak_outbox"] <= max_outbox
        deadline = time.time() + 10
        while time.time() < deadline and st.server.observe()["clients"] > 0:
            time.sleep(0.05)
        assert st.server.observe()["clients"] == 0  # the laggard was dropped
        # The server still serves new clients after shedding one.
        with IngestClient(st.host, st.port) as client:
            client.subscribe(QUERY_A, WINDOW)
            client.ingest_all(star_stream(30), frame_size=10)
        for _ in run:
            pass


# --------------------------------------------------------------------------
class TestObservability:
    def test_net_series_and_batch_spans(self):
        from repro.obs import Observer, TraceRecorder

        observer = Observer(trace=TraceRecorder(sample_every=1), sample_every=1)
        engine = MultiQueryEngine()
        stream = star_stream(200)
        with ServerThread(engine, max_batch=32, observer=observer) as st:
            with IngestClient(st.host, st.port) as client:
                client.subscribe(QUERY_A, WINDOW)
                client.ingest_all(stream, frame_size=20)
        series = observer.metrics.collect()
        assert series["repro_ingest_tuples_total"] == len(stream)
        assert series["repro_ingest_queue_depth"] == 0
        assert series["repro_net_shed_total"] == 0
        assert series["repro_net_clients"] == 0
        assert series["repro_ingest_batch_tuples"]["count"] >= 1
        assert series["repro_ingest_batch_tuples"]["sum"] == len(stream)
        # Engine-side batch instrumentation fired through the same observer.
        assert series["repro_batches_total"] >= 1
        exposition = observer.metrics.to_prometheus()
        assert "repro_ingest_tuples_total" in exposition
        assert "repro_net_shed_total" in exposition
        kinds = {span[0] for span in observer.trace.spans()}
        assert "batch" in kinds

    def test_coalescer_batches_bounded_by_max_batch(self):
        from repro.obs import Observer

        observer = Observer()
        engine = _SlowFeed(MultiQueryEngine(), delay=0.002)
        with ServerThread(engine, max_batch=16, observer=observer) as st:
            with IngestClient(st.host, st.port) as client:
                client.subscribe(QUERY_A, WINDOW)
                seqs = [client.ingest(star_stream(8, seed=i)) for i in range(40)]
                for seq in seqs:
                    client.wait_ack(seq)
        # The wrapper saw every actual engine batch: coalesced past the
        # 8-tuple frames, never past max_batch.
        assert engine.batch_sizes
        assert max(engine.batch_sizes) <= 16
        assert max(engine.batch_sizes) > 8  # frames really were coalesced
        histogram = observer.metrics.histogram("repro_ingest_batch_tuples")
        assert histogram.count == len(engine.batch_sizes)
        assert histogram.sum == sum(engine.batch_sizes) == 40 * 8


# --------------------------------------------------------------------------
class TestServeCLI:
    def _serve_and_run_client(self, tmp_path, serve_flags, client_flags, events_csv):
        port_file = tmp_path / "port"
        events = tmp_path / "events.csv"
        events.write_text(events_csv)
        result = {}

        def serve():
            result["code"] = main(
                [
                    "serve",
                    "--port",
                    "0",
                    "--port-file",
                    str(port_file),
                    "--exit-after-clients",
                    "1",
                    *serve_flags,
                ]
            )

        thread = threading.Thread(target=serve)
        thread.start()
        deadline = time.time() + 30
        while time.time() < deadline and not port_file.exists():
            time.sleep(0.05)
        port = int(port_file.read_text().strip())
        buffer = io.StringIO()
        args = build_net_client_parser().parse_args(
            ["--port", str(port), str(events), *client_flags]
        )
        from repro.cli import read_events

        code = run_net_client(args, read_events(events_csv.splitlines()), buffer)
        thread.join(timeout=30)
        assert result["code"] == 0
        return code, buffer.getvalue()

    def test_serve_client_diff_identical_to_multi_cli(self, tmp_path, capsys):
        events_csv = "\n".join(
            f"{t.relation},{','.join(map(str, t.values))}" for t in star_stream(200)
        )
        code, client_out = self._serve_and_run_client(
            tmp_path,
            [],
            ["--query", QUERY_A, "--query", QUERY_B, "--window", str(WINDOW)],
            events_csv,
        )
        capsys.readouterr()  # the serve thread's stdout, not under test here
        assert code == 0
        # Direct multi CLI over the same events.
        from repro.cli import build_multi_parser, read_events

        args = build_multi_parser().parse_args(
            ["--query", QUERY_A, "--query", QUERY_B, "--window", str(WINDOW)]
        )
        direct = io.StringIO()
        assert run_multi(args, read_events(events_csv.splitlines()), direct) == 0
        served_lines = sorted(
            line for line in client_out.splitlines() if not line.startswith("#")
        )
        direct_lines = sorted(
            line for line in direct.getvalue().splitlines() if not line.startswith("#")
        )
        assert served_lines == direct_lines
        assert served_lines  # the workload does produce matches

    def test_metrics_file_under_serve(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.prom"
        events_csv = "\n".join(
            f"{t.relation},{','.join(map(str, t.values))}" for t in star_stream(60)
        )
        code, _ = self._serve_and_run_client(
            tmp_path,
            ["--metrics-file", str(metrics_file)],
            ["--query", QUERY_A, "--window", str(WINDOW)],
            events_csv,
        )
        capsys.readouterr()
        assert code == 0
        exposition = metrics_file.read_text()
        assert "repro_ingest_tuples_total 60" in exposition
        assert "repro_ingest_queue_depth" in exposition
        assert "repro_net_shed_total" in exposition
        assert "repro_batches_total" in exposition

    def test_serve_parser_defaults(self):
        args = build_serve_parser().parse_args([])
        assert args.port == 0 and args.max_batch == 512
        assert args.shed_policy == "disconnect"
        assert args.adaptive is True
