"""Tests for the enumeration data structure DS_w (repro.core.datastructure) — Section 5."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datastructure import BOTTOM, DataStructure, LinkedListUnionStructure, Node
from repro.valuation import Valuation


def collect(ds: DataStructure, node: Node, position: int) -> set:
    return set(ds.enumerate(node, position))


def collect_all(ds: DataStructure, node: Node) -> set:
    return set(ds.enumerate_all(node))


class TestExtend:
    def test_leaf_node_represents_single_valuation(self):
        ds = DataStructure(window=10)
        node = ds.extend({"a"}, 3, [])
        assert collect_all(ds, node) == {Valuation({"a": {3}})}
        assert node.max_start == 3

    def test_extend_products_children(self):
        ds = DataStructure(window=10)
        left = ds.extend({"a"}, 0, [])
        right = ds.extend({"b"}, 1, [])
        product = ds.extend({"c"}, 2, [left, right])
        assert collect_all(ds, product) == {Valuation({"a": {0}, "b": {1}, "c": {2}})}
        assert product.max_start == 0

    def test_extend_with_union_child_multiplies(self):
        ds = DataStructure(window=10)
        first = ds.extend({"a"}, 0, [])
        second = ds.extend({"a"}, 1, [])
        both = ds.union(first, second)
        product = ds.extend({"b"}, 2, [both])
        assert collect_all(ds, product) == {
            Valuation({"a": {0}, "b": {2}}),
            Valuation({"a": {1}, "b": {2}}),
        }

    def test_extend_validates_children(self):
        ds = DataStructure(window=10)
        child = ds.extend({"a"}, 5, [])
        with pytest.raises(ValueError):
            ds.extend({"b"}, 5, [child])  # equal position not allowed
        with pytest.raises(ValueError):
            ds.extend({"b"}, 6, [BOTTOM])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            DataStructure(window=-1)


class TestUnion:
    def test_union_is_set_union(self):
        ds = DataStructure(window=10)
        first = ds.extend({"a"}, 0, [])
        second = ds.extend({"a"}, 1, [])
        union = ds.union(first, second)
        assert collect_all(ds, union) == {Valuation({"a": {0}}), Valuation({"a": {1}})}

    def test_union_is_persistent(self):
        ds = DataStructure(window=10)
        first = ds.extend({"a"}, 0, [])
        second = ds.extend({"a"}, 1, [])
        union = ds.union(first, second)
        # The original nodes keep their own semantics.
        assert collect_all(ds, first) == {Valuation({"a": {0}})}
        assert collect_all(ds, second) == {Valuation({"a": {1}})}
        third = ds.extend({"a"}, 2, [])
        bigger = ds.union(union, third)
        assert collect_all(ds, union) == {Valuation({"a": {0}}), Valuation({"a": {1}})}
        assert len(collect_all(ds, bigger)) == 3

    def test_union_requires_fresh_second_argument(self):
        ds = DataStructure(window=10)
        first = ds.extend({"a"}, 0, [])
        second = ds.extend({"a"}, 1, [])
        union = ds.union(first, second)
        third = ds.extend({"a"}, 2, [])
        with pytest.raises(ValueError):
            ds.union(third, union)

    def test_union_with_bottom(self):
        ds = DataStructure(window=10)
        node = ds.extend({"a"}, 0, [])
        assert ds.union(BOTTOM, node) is node

    def test_union_prunes_expired_left_tree(self):
        ds = DataStructure(window=2)
        old = ds.extend({"a"}, 0, [])
        fresh = ds.extend({"a"}, 10, [])
        union = ds.union(old, fresh)
        # Everything from `old` is outside any window ending at position 10.
        assert collect(ds, union, 10) == {Valuation({"a": {10}})}

    def test_heap_condition_maintained(self):
        ds = DataStructure(window=100)
        accumulator = ds.extend({"a"}, 0, [])
        for position in range(1, 30):
            fresh = ds.extend({"a"}, position, [])
            accumulator = ds.union(accumulator, fresh)
        assert ds.check_heap_condition(accumulator)
        assert len(collect_all(ds, accumulator)) == 30

    def test_union_depth_stays_logarithmic_under_descending_inserts(self):
        """When every union has to descend (strictly decreasing max_start), the
        direction-bit balancing keeps the union tree depth logarithmic."""
        ds = DataStructure(window=100_000)
        count = 256
        base = 10_000
        anchors = [ds.extend({"z"}, 1_000 - k, []) for k in range(count)]
        accumulator = ds.extend({"a"}, base, [anchors[0]])
        for k in range(1, count):
            fresh = ds.extend({"a"}, base + k, [anchors[k]])
            accumulator = ds.union(accumulator, fresh)
        depth = ds.union_depth(accumulator)
        assert depth <= 4 * (count.bit_length() + 1), f"union tree too deep: {depth}"
        assert ds.check_heap_condition(accumulator)

    def test_union_with_monotone_max_start_is_constant_work(self):
        """When the fresh node dominates (the common streaming case) the union
        places it on top without copying the old tree."""
        ds = DataStructure(window=10_000)
        accumulator = ds.extend({"a"}, 0, [])
        copies_before = ds.union_copies
        for position in range(1, 200):
            accumulator = ds.union(accumulator, ds.extend({"a"}, position, []))
        # One copied node per union call, independent of the accumulated size.
        assert ds.union_copies - copies_before == 199

    def test_linked_list_union_depth_is_linear(self):
        ds = LinkedListUnionStructure(window=10_000)
        anchor = ds.extend({"z"}, 0, [])
        accumulator = ds.extend({"a"}, 1, [anchor])
        count = 64
        for position in range(2, count + 2):
            fresh = ds.extend({"a"}, position, [anchor])
            accumulator = ds.union(accumulator, fresh)
        assert ds.union_depth(accumulator) >= count // 2

    def test_linked_list_union_is_still_correct(self):
        balanced = DataStructure(window=50)
        naive = LinkedListUnionStructure(window=50)
        for ds in (balanced, naive):
            accumulator = ds.extend({"a"}, 0, [])
            for position in range(1, 20):
                accumulator = ds.union(accumulator, ds.extend({"a"}, position, []))
            assert collect_all(ds, accumulator) == {
                Valuation({"a": {p}}) for p in range(20)
            }


class TestWindowedEnumeration:
    def test_window_filters_old_valuations(self):
        ds = DataStructure(window=3)
        nodes = [ds.extend({"a"}, position, []) for position in range(6)]
        accumulator = nodes[0]
        for node in nodes[1:]:
            accumulator = ds.union(accumulator, node)
        assert collect(ds, accumulator, 6) == {Valuation({"a": {p}}) for p in (3, 4, 5)}

    def test_window_filters_products_by_min_position(self):
        ds = DataStructure(window=3)
        old = ds.extend({"a"}, 0, [])
        recent = ds.extend({"a"}, 4, [])
        both = ds.union(old, recent)
        product = ds.extend({"b"}, 5, [both])
        # Only the combination whose min position is within the window survives.
        assert collect(ds, product, 5) == {Valuation({"a": {4}, "b": {5}})}

    def test_expired_node_enumerates_nothing(self):
        ds = DataStructure(window=2)
        node = ds.extend({"a"}, 0, [])
        assert collect(ds, node, 10) == set()
        assert ds.expired(node, 10)
        assert not ds.expired(node, 2)

    def test_bottom_enumerates_nothing(self):
        ds = DataStructure(window=5)
        assert collect(ds, BOTTOM, 3) == set()
        assert collect_all(ds, BOTTOM) == set()

    def test_simplicity_check(self):
        ds = DataStructure(window=10)
        first = ds.extend({"a"}, 0, [])
        product = ds.extend({"b"}, 2, [first])
        assert ds.check_simple(product)
        # Overlapping product: both children mark label "a" at position 0.
        overlapping = ds.extend({"b"}, 3, [first, ds.extend({"a"}, 1, [first])])
        assert not ds.check_simple(overlapping)


class TestDeepChains:
    """The validation helpers must be iterative: long single-relation streams
    (especially through the linked-list ablation) build union chains as deep
    as the stream, which the recursive formulations overflowed at ~1k tuples."""

    COUNT = 1_500  # > CPython's default recursion limit of 1000

    def _deep_chain(self, ds):
        accumulator = ds.extend({"a"}, 0, [])
        for position in range(1, self.COUNT):
            accumulator = ds.union(accumulator, ds.extend({"a"}, position, []))
        return accumulator

    def test_linked_list_chain_validations_do_not_overflow(self):
        ds = LinkedListUnionStructure(window=10 * self.COUNT)
        accumulator = self._deep_chain(ds)
        assert ds.union_depth(accumulator) >= self.COUNT // 2
        assert ds.check_heap_condition(accumulator)
        assert ds.check_simple(accumulator)

    def test_balanced_descending_chain_validations_do_not_overflow(self):
        """Strictly decreasing max_start forces every union to descend, so the
        union tree is as deep as balancing allows; the helpers must still cope
        with thousands of unions."""
        ds = DataStructure(window=10 * self.COUNT)
        anchors = [ds.extend({"z"}, 10_000 - k, []) for k in range(self.COUNT)]
        accumulator = ds.extend({"a"}, 20_000, [anchors[0]])
        for k in range(1, self.COUNT):
            fresh = ds.extend({"a"}, 20_000 + k, [anchors[k]])
            accumulator = ds.union(accumulator, fresh)
        assert ds.check_heap_condition(accumulator)


class TestAgainstBruteForce:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12), st.integers(min_value=0, max_value=8))
    def test_union_chain_equals_reference_set(self, pattern, window):
        """Randomly interleave extend/union operations and compare against a model set."""
        ds = DataStructure(window=window)
        accumulator = None
        expected: set[Valuation] = set()
        position = 0
        for bit in pattern:
            position += 1 + bit
            fresh = ds.extend({"a"}, position, [])
            expected.add(Valuation({"a": {position}}))
            accumulator = fresh if accumulator is None else ds.union(accumulator, fresh)
        final_position = position
        in_window = {v for v in expected if final_position - v.min_position() <= window}
        assert collect(ds, accumulator, final_position) == in_window
        assert ds.check_heap_condition(accumulator)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.sets(st.integers(min_value=0, max_value=3), min_size=1, max_size=2), min_size=1, max_size=5),
    )
    def test_product_of_unions_equals_cartesian_product(self, groups):
        """extend over union children enumerates the full cross product exactly once."""
        ds = DataStructure(window=1000)
        children = []
        expected_factors = []
        position = 0
        for index, group in enumerate(groups):
            union_node = None
            factor = set()
            for offset in sorted(group):
                position += 1
                leaf = ds.extend({f"g{index}"}, position, [])
                factor.add(Valuation({f"g{index}": {position}}))
                union_node = leaf if union_node is None else ds.union(union_node, leaf)
            children.append(union_node)
            expected_factors.append(factor)
        position += 1
        root = ds.extend({"root"}, position, children)
        expected = {Valuation({"root": {position}})}
        for factor in expected_factors:
            expected = {base.product(extra) for base in expected for extra in factor}
        assert collect_all(ds, root) == expected
