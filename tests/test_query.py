"""Unit tests for conjunctive-query syntax and structure (repro.cq.query)."""

import pytest

from repro.cq.query import Atom, ConjunctiveQuery, Variable, is_variable, parse_query
from repro.cq.schema import Schema, SchemaError, Tuple

from helpers import QUERY_Q0, QUERY_Q1, QUERY_Q2, QUERY_STARDEEP, X, Y


class TestAtom:
    def test_variables_and_constants(self):
        atom = Atom("S", (X, 2, Y, X))
        assert atom.variables() == {X, Y}
        assert atom.constants() == {2}
        assert atom.arity == 4

    def test_positions_of(self):
        atom = Atom("S", (X, Y, X))
        assert atom.positions_of(X) == (0, 2)
        assert atom.positions_of(Y) == (1,)
        assert atom.positions_of(Variable("z")) == ()

    def test_matches_respects_relation_and_arity(self):
        atom = Atom("S", (X, Y))
        assert atom.matches(Tuple("S", (1, 2)))
        assert not atom.matches(Tuple("R", (1, 2)))
        assert not atom.matches(Tuple("S", (1, 2, 3)))

    def test_matches_repeated_variables(self):
        atom = Atom("S", (X, X))
        assert atom.matches(Tuple("S", (7, 7)))
        assert not atom.matches(Tuple("S", (7, 8)))

    def test_matches_constants(self):
        atom = Atom("S", (2, Y))
        assert atom.matches(Tuple("S", (2, 5)))
        assert not atom.matches(Tuple("S", (3, 5)))

    def test_instantiate(self):
        atom = Atom("S", (X, 2))
        assert atom.instantiate({X: 7}) == Tuple("S", (7, 2))
        with pytest.raises(KeyError):
            Atom("S", (X, Y)).instantiate({X: 7})

    def test_str(self):
        assert str(Atom("S", (X, 2))) == "S(x, 2)"

    def test_is_variable_helper(self):
        assert is_variable(X)
        assert not is_variable(3)


class TestConjunctiveQuery:
    def test_requires_at_least_one_atom(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([X], [])

    def test_head_variables_must_occur_in_body(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([X, Y], [Atom("T", (X,))])

    def test_head_must_be_variables(self):
        with pytest.raises(TypeError):
            ConjunctiveQuery([X, 3], [Atom("S", (X,))])  # type: ignore[list-item]

    def test_bag_of_atoms_keeps_duplicates(self):
        bag = QUERY_Q1.as_bag()
        assert len(bag) == 4
        assert bag.multiplicity(Atom("T", (X,))) == 2

    def test_atoms_with(self):
        assert QUERY_Q0.atom_ids_with(X) == {0, 1, 2}
        assert QUERY_Q0.atom_ids_with(Y) == {1, 2}
        assert QUERY_Q1.atom_ids_with(X) == {0, 1, 3}

    def test_is_full(self):
        assert QUERY_Q0.is_full()
        assert QUERY_Q2.is_full()
        not_full = ConjunctiveQuery([X], [Atom("S", (X, Y))])
        assert not not_full.is_full()

    def test_has_self_joins(self):
        assert not QUERY_Q0.has_self_joins()
        assert QUERY_Q1.has_self_joins()
        assert QUERY_Q2.has_self_joins()

    def test_self_join_groups(self):
        groups = QUERY_Q2.self_join_groups()
        assert groups == {"R": (0, 1)}

    def test_connectivity(self):
        assert QUERY_Q0.is_connected_hierarchically()
        assert QUERY_Q0.is_gaifman_connected()
        disconnected = ConjunctiveQuery([X, Y], [Atom("T", (X,)), Atom("U", (Y,))])
        assert not disconnected.is_connected_hierarchically()
        assert not disconnected.is_gaifman_connected()

    def test_gaifman_connected_but_no_common_variable(self):
        query = ConjunctiveQuery(
            [X, Y], [Atom("T", (X,)), Atom("S", (X, Y)), Atom("R", (Y,))]
        )
        assert query.is_gaifman_connected()
        assert not query.is_connected_hierarchically()

    def test_relations_and_variables(self):
        assert QUERY_STARDEEP.relations() == {"R", "S", "T", "U"}
        assert {v.name for v in QUERY_STARDEEP.variables()} == {"x", "y", "z", "v", "w"}

    def test_infer_schema(self):
        schema = QUERY_Q0.infer_schema()
        assert schema.arity("T") == 1
        assert schema.arity("S") == 2

    def test_infer_schema_conflicting_arity(self):
        query = ConjunctiveQuery([X, Y], [Atom("T", (X,)), Atom("T", (X, Y))])
        with pytest.raises(SchemaError):
            query.infer_schema()

    def test_schema_validation_at_construction(self):
        schema = Schema({"T": 1})
        with pytest.raises(SchemaError):
            ConjunctiveQuery([X], [Atom("T", (X, X))], schema=schema)
        with pytest.raises(SchemaError):
            ConjunctiveQuery([X], [Atom("U", (X,))], schema=schema)

    def test_equality_and_hash(self):
        again = ConjunctiveQuery(
            [X, Y], [Atom("T", (X,)), Atom("S", (X, Y)), Atom("R", (X, Y))]
        )
        assert again == QUERY_Q0
        assert hash(again) == hash(QUERY_Q0)

    def test_str(self):
        assert str(QUERY_Q0) == "Q0(x, y) <- T(x), S(x, y), R(x, y)"


class TestParser:
    def test_parse_simple_query(self):
        query = parse_query("Q(x, y) <- T(x), S(x, y), R(x, y)")
        assert query == QUERY_Q0
        assert query.name == "Q"

    def test_parse_constants(self):
        query = parse_query("Q(y) <- S(2, y), N('msg', y)")
        assert query.atom(0).constants() == {2}
        assert query.atom(1).constants() == {"msg"}

    def test_parse_negative_integers(self):
        query = parse_query("Q(x) <- T(x), S(-3, x)")
        assert query.atom(1).constants() == {-3}

    def test_parse_rejects_missing_arrow(self):
        with pytest.raises(ValueError):
            parse_query("Q(x) T(x)")

    def test_parse_rejects_empty_body(self):
        with pytest.raises(ValueError):
            parse_query("Q(x) <- ")

    def test_parse_rejects_constant_in_head(self):
        with pytest.raises(ValueError):
            parse_query("Q(3) <- T(x)")

    def test_parse_roundtrip_str(self):
        text = "Q(x, y) <- T(x), S(x, y), R(x, y)"
        assert str(parse_query(text)) == text
