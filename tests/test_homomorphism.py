"""Tests for homomorphisms, t-homomorphisms and bag semantics (repro.cq.homomorphism)."""

from hypothesis import given, settings, strategies as st

from repro.cq.bag import Bag
from repro.cq.database import Database
from repro.cq.homomorphism import (
    Homomorphism,
    bag_semantics,
    chaudhuri_vardi_semantics,
    enumerate_homomorphisms,
    enumerate_t_homomorphisms,
    multiplicity_of_homomorphism,
)
from repro.cq.query import Atom, ConjunctiveQuery, Variable
from repro.cq.schema import Tuple

from helpers import QUERY_Q0, QUERY_Q2, SIGMA0, STREAM_S0, X, Y, star_query, star_schema


def example_d0() -> Database:
    return Database(SIGMA0, {i: STREAM_S0[i] for i in range(6)})


class TestHomomorphism:
    def test_apply_and_head_tuple(self):
        hom = Homomorphism({X: 2, Y: 11})
        assert hom.apply(Atom("S", (X, Y))) == Tuple("S", (2, 11))
        assert hom.head_tuple(QUERY_Q0) == Tuple("Q0", (2, 11))

    def test_equality_and_hash(self):
        assert Homomorphism({X: 1}) == Homomorphism({X: 1})
        assert hash(Homomorphism({X: 1})) == hash(Homomorphism({X: 1}))
        assert Homomorphism({X: 1}) != Homomorphism({X: 2})


class TestTHomomorphismEnumeration:
    def test_paper_example_t_homomorphisms(self):
        """The two t-homomorphisms η0, η1 from Section 4 are found (and only those
        mapping Q0 into D0)."""
        t_homs = list(enumerate_t_homomorphisms(QUERY_Q0, example_d0()))
        assignments = {tuple(sorted(t.items())) for t in t_homs}
        eta0 = ((0, 1), (1, 3), (2, 5))
        eta1 = ((0, 1), (1, 0), (2, 5))
        assert eta0 in assignments
        assert eta1 in assignments
        assert len(assignments) == 2

    def test_each_t_homomorphism_has_consistent_homomorphism(self):
        database = example_d0()
        for t_hom in enumerate_t_homomorphisms(QUERY_Q0, database):
            for atom_id, db_id in t_hom.items():
                atom = QUERY_Q0.atom(atom_id)
                assert t_hom.homomorphism.apply(atom) == database[db_id]

    def test_constants_restrict_matches(self):
        query = ConjunctiveQuery([Y], [Atom("S", (2, Y))])
        database = example_d0()
        t_homs = list(enumerate_t_homomorphisms(query, database))
        assert {t[0] for t in t_homs} == {0, 3}

    def test_self_join_query_can_reuse_and_split_tuples(self):
        database = Database(
            QUERY_Q2.infer_schema(),
            {0: Tuple("R", (0, 1, 2)), 1: Tuple("R", (0, 1, 3)), 2: Tuple("U", (0, 1))},
        )
        t_homs = list(enumerate_t_homomorphisms(QUERY_Q2, database))
        # Atoms 0 and 1 can each map to either R tuple independently: 2*2 = 4.
        assert len(t_homs) == 4

    def test_no_matches_when_relation_missing(self):
        database = Database(SIGMA0, [Tuple("T", (1,))])
        assert list(enumerate_t_homomorphisms(QUERY_Q0, database)) == []

    def test_homomorphisms_deduplicate(self):
        database = example_d0()
        homs = list(enumerate_homomorphisms(QUERY_Q0, database))
        assert len(homs) == len(set(homs))
        # Two t-homomorphisms share a single homomorphism (the duplicate S tuple).
        assert len(homs) == 1


class TestBagSemantics:
    def test_output_multiplicity_counts_duplicates(self):
        output = bag_semantics(QUERY_Q0, example_d0())
        assert output.multiplicity(Tuple("Q0", (2, 11))) == 2
        assert len(output) == 2

    def test_multiplicity_of_homomorphism(self):
        hom = Homomorphism({X: 2, Y: 11})
        assert multiplicity_of_homomorphism(QUERY_Q0, example_d0(), hom) == 2

    def test_equivalence_with_chaudhuri_vardi_on_paper_example(self):
        database = example_d0()
        assert bag_semantics(QUERY_Q0, database) == chaudhuri_vardi_semantics(QUERY_Q0, database)

    def test_equivalence_with_self_joins(self):
        database = Database(
            QUERY_Q2.infer_schema(),
            {
                0: Tuple("R", (0, 1, 2)),
                1: Tuple("R", (0, 1, 2)),
                2: Tuple("U", (0, 1)),
                3: Tuple("R", (5, 5, 5)),
            },
        )
        assert bag_semantics(QUERY_Q2, database) == chaudhuri_vardi_semantics(QUERY_Q2, database)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["A1", "A2"]),
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=0, max_value=2),
            ),
            max_size=7,
        )
    )
    def test_equivalence_on_random_star_databases(self, rows):
        """Appendix B: the t-homomorphism semantics equals the Chaudhuri–Vardi semantics."""
        query = star_query(2)
        schema = star_schema(2)
        database = Database(schema, [Tuple(rel, (a, b)) for rel, a, b in rows])
        assert bag_semantics(query, database) == chaudhuri_vardi_semantics(query, database)

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=1), st.integers(min_value=0, max_value=1)),
            max_size=6,
        )
    )
    def test_equivalence_on_random_self_join_databases(self, rows):
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery([x, y], [Atom("E", (x, y)), Atom("E", (y, x))])
        database = Database(
            query.infer_schema(), [Tuple("E", (a, b)) for a, b in rows]
        )
        assert bag_semantics(query, database) == chaudhuri_vardi_semantics(query, database)

    def test_output_identifiers_are_t_homomorphisms(self):
        output = bag_semantics(QUERY_Q0, example_d0())
        assert all(hasattr(identifier, "assignment") for identifier in output.identifiers())
