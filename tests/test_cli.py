"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import build_parser, format_match, main, parse_event_line, read_events, run
from repro.cq.schema import Tuple
from repro.valuation import Valuation


EVENTS_CSV = """\
# symbol price events
S,2,11
T,2
R,1,10
S,2,11
T,1
R,2,11
"""


class TestEventParsing:
    def test_parse_simple_line(self):
        assert parse_event_line("S,2,11") == Tuple("S", (2, 11))

    def test_parse_string_values(self):
        assert parse_event_line("News,acme,up") == Tuple("News", ("acme", "up"))

    def test_blank_and_comment_lines_skipped(self):
        assert parse_event_line("") is None
        assert parse_event_line("   ") is None
        assert parse_event_line("# comment") is None

    def test_custom_separator(self):
        assert parse_event_line("S;1;2", separator=";") == Tuple("S", (1, 2))

    def test_missing_relation_raises(self):
        with pytest.raises(ValueError):
            parse_event_line(",1,2")

    def test_read_events(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        assert len(events) == 6
        assert events[0] == Tuple("S", (2, 11))


class TestFormatting:
    def test_format_match(self):
        valuation = Valuation({0: {1}, 1: {3}, 2: {5}})
        assert format_match(5, valuation) == "5\t0=1,1=3,2=5"


class TestRun:
    def _run(self, argv, events):
        parser = build_parser()
        args = parser.parse_args(argv)
        output = io.StringIO()
        code = run(args, events, output)
        return code, output.getvalue()

    def test_end_to_end_matches(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--window", "100"], events
        )
        assert code == 0
        lines = [line for line in output.splitlines() if not line.startswith("#")]
        assert len(lines) == 2  # the two matches at position 5
        assert all(line.startswith("5\t") for line in lines)
        assert "matches=2" in output

    def test_quiet_mode(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--quiet"], events
        )
        assert code == 0
        assert output.count("\n") == 1  # only the summary line

    def test_limit(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--limit", "3"], events
        )
        assert code == 0
        assert "events=3" in output
        assert "matches=0" in output

    def test_rejects_unparsable_query(self):
        code, _ = self._run(["--query", "not a query"], [])
        assert code == 2

    def test_rejects_non_hierarchical_query(self):
        code, _ = self._run(["--query", "Q(x, y) <- A(x), B(y), C(x, y)"], [])
        assert code == 2

    def test_main_with_file(self, tmp_path, capsys):
        path = tmp_path / "events.csv"
        path.write_text(EVENTS_CSV)
        code = main(["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", str(path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "matches=2" in captured.out

    def test_stats_prints_memory_section(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--window", "100", "--stats"],
            events,
        )
        assert code == 0
        assert "arena_slabs=" in output
        assert "arena_live_nodes=" in output
        assert "arena_released=" in output

    def test_no_arena_matches_arena(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        argv = ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--window", "100"]
        _, arena_output = self._run(argv, events)
        _, object_output = self._run(argv + ["--no-arena"], events)
        arena_matches = [l for l in arena_output.splitlines() if not l.startswith("#")]
        object_matches = [l for l in object_output.splitlines() if not l.startswith("#")]
        assert arena_matches == object_matches
        # The object ablation reports an empty arena in the memory section.
        _, stats_output = self._run(argv + ["--no-arena", "--stats"], events)
        assert "arena_slabs=0" in stats_output

    def test_general_mode_matches_hashed_engine(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        argv = ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--window", "100"]
        _, hashed_output = self._run(argv, events)
        code, general_output = self._run(argv + ["--general"], events)
        assert code == 0
        hashed_matches = [l for l in hashed_output.splitlines() if not l.startswith("#")]
        general_matches = [l for l in general_output.splitlines() if not l.startswith("#")]
        assert sorted(general_matches) == sorted(hashed_matches)

    def test_stats_report_shape_identical_across_modes(self):
        """The --stats keys are the same in single, general, and multi mode."""
        from repro.cli import build_multi_parser, run_multi

        def stat_keys(output):
            lines = [l for l in output.splitlines() if l.startswith("#")]
            # Drop the summary line (mode-specific); keep the counter,
            # dispatch, memory and kernel stat lines.
            report = lines[1:]
            return [
                [field.split("=")[0] for field in line.replace("# ", "").split()]
                for line in report
            ]

        events = list(read_events(EVENTS_CSV.splitlines()))
        # --no-adaptive pins the adaptive line to its uniform disabled shape
        # (when enabled, its keys legitimately differ with engine state).
        argv = [
            "--query", "Q(x, y) <- T(x), S(x, y), R(x, y)",
            "--window", "100", "--stats", "--quiet", "--no-adaptive",
        ]
        _, single = self._run(argv, events)
        _, general = self._run(argv + ["--general"], events)
        multi_parser = build_multi_parser()
        multi_args = multi_parser.parse_args(argv)
        multi_output = io.StringIO()
        assert run_multi(multi_args, events, multi_output) == 0
        single_keys = stat_keys(single)
        assert len(single_keys) == 5
        assert stat_keys(general) == single_keys
        assert stat_keys(multi_output.getvalue()) == single_keys

    @pytest.mark.parametrize("batch_size", [1, 2, 100])
    def test_batched_ingestion_matches_per_event(self, batch_size):
        events = list(read_events(EVENTS_CSV.splitlines()))
        argv = ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--window", "100"]
        _, per_event = self._run(argv, events)
        code, batched = self._run(argv + ["--batch-size", str(batch_size)], events)
        assert code == 0
        per_event_matches = sorted(
            line for line in per_event.splitlines() if not line.startswith("#")
        )
        batched_matches = sorted(
            line for line in batched.splitlines() if not line.startswith("#")
        )
        assert batched_matches == per_event_matches
        assert f"batch_size={batch_size}" in batched


class TestRunMulti:
    def _run(self, argv, events):
        from repro.cli import build_multi_parser, run_multi

        parser = build_multi_parser()
        args = parser.parse_args(argv)
        output = io.StringIO()
        code = run_multi(args, events, output)
        return code, output.getvalue()

    QUERIES = [
        "--query", "Q(x, y) <- T(x), S(x, y), R(x, y)",
        "--query", "Q2(x, y) <- T(x), S(x, y)",
    ]

    def test_multi_end_to_end(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(self.QUERIES + ["--window", "100"], events)
        assert code == 0
        match_lines = [line for line in output.splitlines() if not line.startswith("#")]
        # Q has its two matches at position 5; Q2 matches at positions 1 and 3.
        assert sum(1 for line in match_lines if line.startswith("Q\t5\t")) == 2
        assert sum(1 for line in match_lines if line.startswith("Q2\t")) == 2
        assert "matches=4" in output and "queries=2" in output

    def test_multi_matches_single_engine_per_query(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, multi_output = self._run(self.QUERIES + ["--window", "100"], events)
        assert code == 0
        parser = build_parser()
        for name in ("Q", "Q2"):
            query = next(q for q in self.QUERIES if q.startswith(f"{name}("))
            args = parser.parse_args(["--query", query, "--window", "100"])
            single_output = io.StringIO()
            assert run(args, events, single_output) == 0
            single_matches = sorted(
                line
                for line in single_output.getvalue().splitlines()
                if not line.startswith("#")
            )
            multi_matches = sorted(
                line[len(name) + 1 :]
                for line in multi_output.splitlines()
                if line.startswith(f"{name}\t")
            )
            assert multi_matches == single_matches

    def test_multi_batched_and_stats(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            self.QUERIES + ["--window", "100", "--batch-size", "2", "--stats"], events
        )
        assert code == 0
        assert "matches=4" in output and "batch_size=2" in output
        assert "shared_predicate_groups=" in output and "pred_cache_hits=" in output

    def test_multi_stats_memory_section_and_no_arena(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(self.QUERIES + ["--window", "100", "--stats"], events)
        assert code == 0
        assert "arena_slabs=" in output and "arena_live_nodes=" in output
        code, object_output = self._run(
            self.QUERIES + ["--window", "100", "--no-arena", "--stats"], events
        )
        assert code == 0
        assert "arena_slabs=0" in object_output
        arena_matches = [l for l in output.splitlines() if not l.startswith("#")]
        object_matches = [l for l in object_output.splitlines() if not l.startswith("#")]
        assert arena_matches == object_matches

    def test_multi_per_query_windows(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            self.QUERIES + ["--window", "100", "--window", "1"], events
        )
        assert code == 0
        # Q2 needs span 2 at least once; window 1 kills one of its matches.
        assert "Q2=1" in output

    def test_multi_window_count_mismatch_rejected(self):
        code, _ = self._run(
            self.QUERIES + ["--window", "1", "--window", "2", "--window", "3"], []
        )
        assert code == 2

    def test_multi_rejects_bad_query(self):
        code, _ = self._run(["--query", "not a query"], [])
        assert code == 2

    def test_main_routes_multi_subcommand(self, tmp_path, capsys):
        path = tmp_path / "events.csv"
        path.write_text(EVENTS_CSV)
        code = main(["multi", *self.QUERIES, "--window", "100", str(path)])
        assert code == 0
        assert "queries=2" in capsys.readouterr().out


class TestCheckpointRestore:
    """CLI --checkpoint / --restore: split runs continue bit-identically."""

    QUERY = ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--window", "100"]

    def _run(self, argv, events):
        parser = build_parser()
        args = parser.parse_args(argv)
        output = io.StringIO()
        code = run(args, events, output)
        return code, output.getvalue()

    def _match_lines(self, output):
        return [line for line in output.splitlines() if not line.startswith("#")]

    def _stats_tail(self, output):
        return output.splitlines()[-3:]

    @pytest.mark.parametrize("mode", [[], ["--general"]])
    def test_split_run_matches_continuous(self, tmp_path, mode):
        events = list(read_events(EVENTS_CSV.splitlines())) * 3
        checkpoint = str(tmp_path / "ck.json")
        code, continuous = self._run(self.QUERY + mode + ["--stats"], events)
        assert code == 0
        code, _ = self._run(
            self.QUERY + mode + ["--stats", "--checkpoint", checkpoint], events[:9]
        )
        assert code == 0
        code, resumed = self._run(
            self.QUERY + mode + ["--stats", "--restore", checkpoint], events[9:]
        )
        assert code == 0
        tail = self._match_lines(resumed)
        assert tail == self._match_lines(continuous)[-len(tail) :] if tail else True
        # The cumulative --stats tail (counters, dispatch, memory) is
        # restored state plus the second half — identical to one full run.
        assert self._stats_tail(resumed) == self._stats_tail(continuous)

    def test_multi_split_run_matches_continuous(self, tmp_path):
        from repro.cli import build_multi_parser, run_multi

        def run_multi_argv(argv, events):
            args = build_multi_parser().parse_args(argv)
            output = io.StringIO()
            return run_multi(args, events, output), output.getvalue()

        queries = [
            "--query", "Q(x, y) <- T(x), S(x, y), R(x, y)",
            "--query", "Q2(x, y) <- T(x), S(x, y)",
            "--window", "100",
        ]
        events = list(read_events(EVENTS_CSV.splitlines())) * 3
        checkpoint = str(tmp_path / "mck.json")
        code, continuous = run_multi_argv(queries + ["--stats"], events)
        assert code == 0
        code, _ = run_multi_argv(queries + ["--stats", "--checkpoint", checkpoint], events[:9])
        assert code == 0
        code, resumed = run_multi_argv(queries + ["--stats", "--restore", checkpoint], events[9:])
        assert code == 0
        tail = self._match_lines(resumed)
        assert tail == self._match_lines(continuous)[-len(tail) :] if tail else True
        assert self._stats_tail(resumed) == self._stats_tail(continuous)

    def test_restore_with_wrong_query_fails_cleanly(self, tmp_path, capsys):
        events = list(read_events(EVENTS_CSV.splitlines()))
        checkpoint = str(tmp_path / "ck.json")
        code, _ = self._run(self.QUERY + ["--checkpoint", checkpoint], events)
        assert code == 0
        code, _ = self._run(
            ["--query", "Q2(x, y) <- S(x, y), R(x, y)", "--window", "100",
             "--restore", checkpoint],
            events,
        )
        assert code == 2

    def test_restore_missing_file_fails_cleanly(self):
        code, _ = self._run(self.QUERY + ["--restore", "/nonexistent/ck.json"], [])
        assert code == 2

    def test_checkpoint_requires_arena(self, tmp_path):
        events = list(read_events(EVENTS_CSV.splitlines()))
        checkpoint = str(tmp_path / "ck.json")
        code, _ = self._run(self.QUERY + ["--no-arena", "--checkpoint", checkpoint], events)
        assert code == 2


class TestCheckpointRobustness:
    QUERY = ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--window", "100"]

    def _run(self, argv, events):
        parser = build_parser()
        args = parser.parse_args(argv)
        output = io.StringIO()
        code = run(args, events, output)
        return code, output.getvalue()

    def test_malformed_checkpoint_file_fails_cleanly(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text('{"snapshot_version": 1, "engine": "streaming"}\n')
        code, _ = self._run(self.QUERY + ["--restore", str(path)], [])
        assert code == 2
        path.write_text("not json at all\n")
        code, _ = self._run(self.QUERY + ["--restore", str(path)], [])
        assert code == 2

    def test_checkpoint_with_no_arena_fails_before_processing(self, tmp_path):
        seen = []

        def events():
            for tup in read_events(EVENTS_CSV.splitlines()):
                seen.append(tup)
                yield tup

        checkpoint = str(tmp_path / "ck.json")
        code, _ = self._run(
            self.QUERY + ["--no-arena", "--checkpoint", checkpoint], events()
        )
        assert code == 2
        assert seen == []  # failed fast, stream untouched

    def test_no_columnar_produces_identical_matches(self, tmp_path):
        events = list(read_events(EVENTS_CSV.splitlines()))
        _, default_out = self._run(self.QUERY, events)
        _, listy_out = self._run(self.QUERY + ["--no-columnar"], events)
        strip = lambda s: [l for l in s.splitlines() if not l.startswith("#")]
        assert strip(default_out) == strip(listy_out)
        # and checkpoints taken from either layout restore into the default
        checkpoint = str(tmp_path / "ck.json")
        code, _ = self._run(self.QUERY + ["--no-columnar", "--checkpoint", checkpoint], events)
        assert code == 0
        code, _ = self._run(self.QUERY + ["--restore", checkpoint], events)
        assert code == 0
