"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import build_parser, format_match, main, parse_event_line, read_events, run
from repro.cq.schema import Tuple
from repro.valuation import Valuation


EVENTS_CSV = """\
# symbol price events
S,2,11
T,2
R,1,10
S,2,11
T,1
R,2,11
"""


class TestEventParsing:
    def test_parse_simple_line(self):
        assert parse_event_line("S,2,11") == Tuple("S", (2, 11))

    def test_parse_string_values(self):
        assert parse_event_line("News,acme,up") == Tuple("News", ("acme", "up"))

    def test_blank_and_comment_lines_skipped(self):
        assert parse_event_line("") is None
        assert parse_event_line("   ") is None
        assert parse_event_line("# comment") is None

    def test_custom_separator(self):
        assert parse_event_line("S;1;2", separator=";") == Tuple("S", (1, 2))

    def test_missing_relation_raises(self):
        with pytest.raises(ValueError):
            parse_event_line(",1,2")

    def test_read_events(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        assert len(events) == 6
        assert events[0] == Tuple("S", (2, 11))


class TestFormatting:
    def test_format_match(self):
        valuation = Valuation({0: {1}, 1: {3}, 2: {5}})
        assert format_match(5, valuation) == "5\t0=1,1=3,2=5"


class TestRun:
    def _run(self, argv, events):
        parser = build_parser()
        args = parser.parse_args(argv)
        output = io.StringIO()
        code = run(args, events, output)
        return code, output.getvalue()

    def test_end_to_end_matches(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--window", "100"], events
        )
        assert code == 0
        lines = [line for line in output.splitlines() if not line.startswith("#")]
        assert len(lines) == 2  # the two matches at position 5
        assert all(line.startswith("5\t") for line in lines)
        assert "matches=2" in output

    def test_quiet_mode(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--quiet"], events
        )
        assert code == 0
        assert output.count("\n") == 1  # only the summary line

    def test_limit(self):
        events = list(read_events(EVENTS_CSV.splitlines()))
        code, output = self._run(
            ["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", "--limit", "3"], events
        )
        assert code == 0
        assert "events=3" in output
        assert "matches=0" in output

    def test_rejects_unparsable_query(self):
        code, _ = self._run(["--query", "not a query"], [])
        assert code == 2

    def test_rejects_non_hierarchical_query(self):
        code, _ = self._run(["--query", "Q(x, y) <- A(x), B(y), C(x, y)"], [])
        assert code == 2

    def test_main_with_file(self, tmp_path, capsys):
        path = tmp_path / "events.csv"
        path.write_text(EVENTS_CSV)
        code = main(["--query", "Q(x, y) <- T(x), S(x, y), R(x, y)", str(path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "matches=2" in captured.out
