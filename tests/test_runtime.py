"""Tests for the shared streaming runtime (repro.runtime) and the
incrementally patched merged dispatch index.

Three layers:

* unit tests of :class:`StreamRuntime` / :class:`EvictionLane` — the sweep
  protocol (steady state, catch-up, superseded entries, inactive lanes),
  the batch driver and the aggregated introspection;
* incremental-patching invariants — after *every* ``add_query`` /
  ``remove_query`` the patched :class:`MergedDispatchIndex` must be
  structurally identical (``signature()``) to a from-scratch rebuild over the
  surviving queries, and the interned-key tables must shrink back (no
  tombstones, no leaks);
* registration-churn differentials — loops of register/unregister mid-stream
  asserting per-query outputs identical to fresh independent evaluators, and
  the incremental engine identical to the full-rebuild ablation.
"""

import random

import pytest

from repro.core.arena import ArenaDataStructure
from repro.core.evaluation import StreamingEvaluator
from repro.cq.schema import Tuple
from repro.engine.dsl import atom, conjunction, sequence
from repro.multi import MergedDispatchIndex, MultiQueryEngine, compile_query
from repro.runtime import RELEASE_PASS_INTERVAL, EngineStatistics, EvictionLane, StreamRuntime
from repro.streams.generators import random_stream

from helpers import SIGMA0


QUERY_SPECS = [
    "Q1(x, y) <- T(x), S(x, y), R(x, y)",
    "Q2(x, y) <- S(x, y), R(x, y)",
    "Q3(x) <- T(x)",
    sequence(atom("T", "x"), atom("S", "x", "y")),
    conjunction(atom("S", "x", "y", filters=[("y", ">", 0)]), atom("R", "x", "y")),
    conjunction(atom("R", "x", "y", filters=[("x", "==", 1)])),
]


def sigma0_stream(length, seed, domain_size=3):
    return random_stream(SIGMA0, length=length, domain_size=domain_size, seed=seed).materialise()


def reference_evaluator(query, window, start_position=0):
    evaluator = StreamingEvaluator(compile_query(query), window=window, collect_stats=False)
    evaluator.position = start_position - 1
    return evaluator


def rebuilt_index(engine):
    """A from-scratch merged index over the engine's surviving lanes."""
    lanes = [engine._lanes[qid] for qid in sorted(engine._lanes)]
    return MergedDispatchIndex([(lane, lane.dispatch) for lane in lanes])


class TestStreamRuntimeUnits:
    def _lane(self, window):
        return EvictionLane(window, ArenaDataStructure(window))

    def test_steady_state_sweep_evicts_exactly_on_expiry(self):
        runtime = StreamRuntime()
        lane = runtime.add_lane(self._lane(window=3))
        node = lane.ds.extend({"a"}, 0, [])
        runtime.advance()  # position 0
        runtime.sweep(0)
        lane.hash["k"] = (node, 0)
        runtime.register_entry(lane, "k", node, 0 + 3 + 1)
        for position in range(1, 4):
            assert runtime.advance() == position
            runtime.sweep(position)
            assert "k" in lane.hash  # expires only at max_start + w + 1
        runtime.advance()
        runtime.sweep(4)
        assert "k" not in lane.hash
        assert runtime.evicted == 1
        assert not runtime.buckets

    def test_superseded_entry_survives_old_bucket(self):
        runtime = StreamRuntime()
        lane = runtime.add_lane(self._lane(window=2))
        old = lane.ds.extend({"a"}, 0, [])
        runtime.position = 0
        runtime._swept_upto = 0
        lane.hash["k"] = (old, 0)
        runtime.register_entry(lane, "k", old, 3)
        # Re-registered with a younger node before the old bucket pops.
        young = lane.ds.extend({"a"}, 2, [])
        lane.hash["k"] = (young, 2)
        runtime.register_entry(lane, "k", young, 5)
        for position in range(1, 5):
            runtime.position = position
            runtime.sweep(position)
            if position < 5:
                assert "k" in lane.hash, position
        runtime.position = 5
        runtime.sweep(5)
        assert "k" not in lane.hash
        assert runtime.evicted == 1  # the superseded pop evicted nothing

    def test_catchup_sweep_covers_gap(self):
        runtime = StreamRuntime()
        lane = runtime.add_lane(self._lane(window=1))
        node = lane.ds.extend({"a"}, 0, [])
        runtime.position = 0
        lane.hash["k"] = (node, 0)
        runtime.register_entry(lane, "k", node, 2)
        # Jump several positions without sweeping (deferred batch), then one
        # sweep call must cover the whole overdue range.
        runtime.position = 6
        runtime.sweep(6)
        assert "k" not in lane.hash
        assert not runtime.buckets

    def test_inactive_lane_entries_are_skipped(self):
        runtime = StreamRuntime()
        lane = runtime.add_lane(self._lane(window=1))
        node = lane.ds.extend({"a"}, 0, [])
        lane.hash["k"] = (node, 0)
        runtime.register_entry(lane, "k", node, 2)
        runtime.drop_lane(lane)
        assert not lane.active and lane.ds is None
        for position in range(3):
            runtime.position = position
            runtime.sweep(position)  # must not fail on the dead lane
        assert runtime.evicted == 0
        assert runtime.hash_table_size() == 0

    def test_drive_batch_sweeps_once_at_end(self):
        runtime = StreamRuntime()
        seen = []

        def step(item):
            runtime.advance()
            seen.append(item)
            return item * 2

        results = runtime.drive_batch([1, 2, 3], step)
        assert results == [2, 4, 6]
        assert seen == [1, 2, 3]
        assert runtime._swept_upto == runtime.position == 2

    def test_release_pass_interval_covers_idle_lanes(self):
        runtime = StreamRuntime()
        lane = runtime.add_lane(self._lane(window=4))
        ds = lane.ds
        for position in range(3):
            ds.extend({"a"}, position, [])
        # No bucket traffic at all: the periodic pass must still release.
        for position in range(2 * RELEASE_PASS_INTERVAL + ds.slab_capacity()):
            runtime.position = position
            runtime.sweep(position)
            for _ in range(4):
                ds.extend({"a"}, position, [])
        assert ds.released_slabs > 0

    def test_memory_info_aggregates_and_flags_mixed_lanes(self):
        from repro.core.datastructure import DataStructure

        runtime = StreamRuntime()
        arena_lane = runtime.add_lane(self._lane(window=4))
        arena_lane.ds.extend({"a"}, 0, [])
        info = runtime.memory_info()
        assert info["arena"] == 1
        assert info["live_nodes"] == 1
        runtime.add_lane(EvictionLane(4, DataStructure(4)))
        assert runtime.memory_info()["arena"] == 0  # mixed setup reports object

    def test_statistics_alias(self):
        stats = EngineStatistics()
        stats.candidates_scanned = 7
        assert stats.transitions_scanned == 7
        assert stats.candidates_scanned == 7


class TestIncrementalMergedIndex:
    def test_patch_equals_rebuild_after_every_mutation(self):
        rng = random.Random(13)
        engine = MultiQueryEngine()
        live = []
        for step in range(60):
            if live and rng.random() < 0.4:
                handle = live.pop(rng.randrange(len(live)))
                engine.unregister(handle)
            else:
                query = rng.choice(QUERY_SPECS)
                live.append(engine.register(query, window=rng.randrange(1, 9)))
            assert engine._merged.signature() == rebuilt_index(engine).signature(), step
            assert len(engine._merged) == len(rebuilt_index(engine))

    def test_interned_key_tables_shrink_back(self):
        engine = MultiQueryEngine()
        baseline_keys = engine._merged.interned_key_count()
        baseline_size = len(engine._merged)
        anchor = engine.register(QUERY_SPECS[0], window=5)
        anchor_keys = engine._merged.interned_key_count()
        anchor_size = len(engine._merged)
        churned = [engine.register(q, window=5) for q in QUERY_SPECS[1:]]
        assert engine._merged.interned_key_count() > anchor_keys
        for handle in churned:
            engine.unregister(handle)
        # No tombstones, no leaked interned keys: back to the anchor's state.
        assert engine._merged.interned_key_count() == anchor_keys
        assert len(engine._merged) == anchor_size
        engine.unregister(anchor)
        assert engine._merged.interned_key_count() == baseline_keys == 0
        assert len(engine._merged) == baseline_size == 0
        assert engine._merged.describe()["relations"] == 0

    def test_recycled_pred_ids_stay_dense(self):
        # Register/unregister many distinct queries: the dense-id space must
        # be recycled, not grow without bound.
        engine = MultiQueryEngine()
        for round_index in range(10):
            handles = [engine.register(q, window=3) for q in QUERY_SPECS]
            for handle in handles:
                engine.unregister(handle)
        probe = engine.register(QUERY_SPECS[0], window=3)
        max_id = max(e.pred_key for e in engine._merged.all_entries())
        # The largest live id is bounded by the peak simultaneous key count,
        # not by the total number of registrations ever made.
        peak = MergedDispatchIndex(
            [
                (name, compile_query(q).dispatch_index())
                for name, q in zip("abcdef", QUERY_SPECS)
            ]
        ).interned_key_count()
        assert max_id < peak
        engine.unregister(probe)

    def test_remove_unknown_owner_raises(self):
        merged = MergedDispatchIndex()
        with pytest.raises(KeyError):
            merged.remove_query(object())

    def test_double_add_rejected(self):
        merged = MergedDispatchIndex()
        dispatch = compile_query(QUERY_SPECS[0]).dispatch_index()
        owner = object()
        merged.add_query(owner, dispatch)
        with pytest.raises(ValueError):
            merged.add_query(owner, dispatch)

    def test_wildcard_queries_patch_globally(self):
        from repro.core.pcea import PCEA, PCEATransition
        from repro.core.predicates import LambdaUnaryPredicate

        wildcard_pcea = PCEA(
            states={"a"},
            transitions=[
                PCEATransition(set(), LambdaUnaryPredicate(lambda t: True), {}, {"w"}, "a")
            ],
            final={"a"},
        )
        specific = compile_query(QUERY_SPECS[0])
        merged = MergedDispatchIndex()
        merged.add_query("spec", specific.dispatch_index())
        merged.add_query("wild", wildcard_pcea.dispatch_index())
        tup = Tuple("T", (1,))
        owners = [e.owner for e in merged.candidates_for(tup)]
        assert "wild" in owners and "spec" in owners
        # Unknown relations still reach the wildcard.
        assert [e.owner for e in merged.candidates_for(Tuple("ZZZ", (0,)))] == ["wild"]
        merged.remove_query("wild")
        assert [e.owner for e in merged.candidates_for(Tuple("ZZZ", (0,)))] == []
        assert all(e.owner == "spec" for e in merged.candidates_for(tup))
        rebuilt = MergedDispatchIndex([("spec", specific.dispatch_index())])
        assert merged.signature() == rebuilt.signature()


class TestRegistrationChurnDifferential:
    """Random register/unregister mid-stream == fresh independent engines."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_churn_outputs_match_fresh_engines(self, seed):
        rng = random.Random(seed)
        stream = sigma0_stream(120, seed, domain_size=3)
        engine = MultiQueryEngine()
        live = {}  # handle id -> (handle, fresh reference evaluator)
        for position, tup in enumerate(stream):
            if rng.random() < 0.15:
                if live and rng.random() < 0.45:
                    victim = rng.choice(list(live))
                    handle, _ = live.pop(victim)
                    engine.unregister(handle)
                else:
                    query = rng.choice(QUERY_SPECS)
                    window = rng.randrange(1, 8)
                    handle = engine.register(query, window=window)
                    live[handle.id] = (
                        handle,
                        reference_evaluator(query, window, start_position=position),
                    )
            outputs = engine.process(tup)
            for handle_id, (handle, reference) in live.items():
                expected = set(reference.process(tup))
                assert set(outputs.get(handle_id, [])) == expected, (
                    f"handle {handle} diverged at position {position}"
                )
            assert set(outputs) <= set(live)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_incremental_equals_full_rebuild_engine(self, seed):
        rng = random.Random(seed + 100)
        stream = sigma0_stream(80, seed, domain_size=3)
        patched = MultiQueryEngine(incremental=True)
        rebuilt = MultiQueryEngine(incremental=False)
        live = []
        for tup in stream:
            if rng.random() < 0.2:
                if live and rng.random() < 0.4:
                    index = rng.randrange(len(live))
                    patched_handle, rebuilt_handle = live.pop(index)
                    patched.unregister(patched_handle)
                    rebuilt.unregister(rebuilt_handle)
                else:
                    query = rng.choice(QUERY_SPECS)
                    window = rng.randrange(1, 7)
                    live.append(
                        (
                            patched.register(query, window=window),
                            rebuilt.register(query, window=window),
                        )
                    )
            patched_outputs = patched.process(tup)
            rebuilt_outputs = rebuilt.process(tup)
            for patched_handle, rebuilt_handle in live:
                assert set(patched_outputs.get(patched_handle.id, [])) == set(
                    rebuilt_outputs.get(rebuilt_handle.id, [])
                )

    def test_churned_engine_hash_tables_stay_bounded(self):
        rng = random.Random(4)
        engine = MultiQueryEngine()
        live = []
        max_size = 0
        for position in range(600):
            if rng.random() < 0.05:
                if live and len(live) > 2:
                    engine.unregister(live.pop(rng.randrange(len(live))))
                else:
                    live.append(engine.register(QUERY_SPECS[0], window=6))
            relation = rng.choice(["T", "S", "R"])
            if relation == "T":
                tup = Tuple("T", (rng.randrange(50),))
            else:
                tup = Tuple(relation, (rng.randrange(50), rng.randrange(50)))
            engine.process(tup)
            max_size = max(max_size, engine.hash_table_size())
        assert engine.evicted > 0
        # Bounded by queries x window-ish, never by the stream length.
        assert max_size <= (len(live) + 3) * 8 * 7


class TestCompactBucketProtocol:
    """Lane interning, flat int-triple buckets, knobs, and eviction hooks."""

    def _lane(self, window):
        return EvictionLane(window, ArenaDataStructure(window))

    def test_lanes_interned_to_dense_never_reused_ids(self):
        runtime = StreamRuntime()
        first = runtime.add_lane(self._lane(3))
        second = runtime.add_lane(self._lane(3))
        assert (first.lane_id, second.lane_id) == (0, 1)
        runtime.drop_lane(first)
        third = runtime.add_lane(self._lane(3))
        assert third.lane_id == 2  # dropped ids are never reused

    def test_buckets_hold_flat_triples(self):
        runtime = StreamRuntime()
        lane = runtime.add_lane(self._lane(4))
        node = lane.ds.extend({"a"}, 0, [])
        lane.hash["k"] = (node, 0)
        runtime.register_entry(lane, "k", node, 5)
        runtime.register_entry(lane, "k2", node, 5)
        assert runtime.buckets[5] == [lane.lane_id, "k", node, lane.lane_id, "k2", node]

    def test_stale_triples_of_dropped_lane_are_skipped(self):
        runtime = StreamRuntime()
        keep = runtime.add_lane(self._lane(1))
        drop = runtime.add_lane(self._lane(1))
        for lane in (keep, drop):
            node = lane.ds.extend({"a"}, 0, [])
            lane.hash["k"] = (node, 0)
            runtime.register_entry(lane, "k", node, 2)
        runtime.drop_lane(drop)
        runtime.position = 2
        runtime.sweep_upto(2)
        assert runtime.evicted == 1  # only the surviving lane's entry
        assert "k" not in keep.hash

    def test_on_evict_hook_fires_per_genuine_eviction(self):
        runtime = StreamRuntime()
        lane = runtime.add_lane(self._lane(2))
        evicted_keys = []
        lane.on_evict = evicted_keys.append
        old = lane.ds.extend({"a"}, 0, [])
        lane.hash["gone"] = (old, 0)
        runtime.register_entry(lane, "gone", old, 3)
        # Superseded entry: re-registered young, the old bucket must not fire.
        lane.hash["kept"] = (old, 0)
        runtime.register_entry(lane, "kept", old, 3)
        young = lane.ds.extend({"a"}, 2, [])
        lane.hash["kept"] = (young, 2)
        runtime.register_entry(lane, "kept", young, 5)
        for position in range(6):
            runtime.position = position
            runtime.sweep(position)
        assert evicted_keys == ["gone", "kept"]

    def test_release_interval_knob(self):
        runtime = StreamRuntime(release_interval=8)
        assert runtime.memory_info()["release_interval"] == 8
        lane = runtime.add_lane(self._lane(window=2))
        ds = lane.ds
        for position in range(3):
            ds.extend({"a"}, position, [])
        released_at = None
        for position in range(2 * ds.slab_capacity()):
            runtime.position = position
            runtime.sweep(position)
            if released_at is None and ds.released_slabs:
                released_at = position
            ds.extend({"a"}, position, [])
        assert ds.released_slabs > 0
        with pytest.raises(ValueError):
            StreamRuntime(release_interval=0)

    def test_multi_engine_exposes_release_interval(self):
        engine = MultiQueryEngine(release_interval=17)
        assert engine.memory_info()["release_interval"] == 17
        default = MultiQueryEngine()
        assert default.memory_info()["release_interval"] == RELEASE_PASS_INTERVAL

    def test_runtime_snapshot_roundtrip(self):
        runtime = StreamRuntime()
        lane = runtime.add_lane(self._lane(3))
        node = lane.ds.extend({"a"}, 0, [])
        lane.hash["k"] = (node, 0)
        runtime.register_entry(lane, "k", node, 4)
        runtime.position = 0
        snap = runtime.snapshot({lane.lane_id: 0})
        fresh = StreamRuntime()
        fresh_lane = fresh.add_lane(self._lane(3))
        fresh_lane.restore(lane.snapshot())
        fresh.restore(snap, [fresh_lane])
        assert fresh.position == runtime.position
        assert fresh.buckets == {4: [fresh_lane.lane_id, "k", node]}
        for position in range(1, 5):
            fresh.position = position
            fresh.sweep(position)
        assert "k" not in fresh_lane.hash and fresh.evicted == 1
