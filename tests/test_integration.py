"""Integration tests: end-to-end scenarios across generators, translation, engines."""

from hypothesis import given, settings, strategies as st

from repro.baselines.delta_join import DeltaJoinEngine
from repro.baselines.naive import NaiveRecomputeEngine
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import check_unambiguous_on_stream
from repro.cq.stream_semantics import cq_stream_new_outputs, cq_stream_output
from repro.engine.compiler import compile_pattern
from repro.engine.dsl import atom, conjunction, sequence
from repro.streams.generators import (
    HCQWorkloadGenerator,
    SensorStreamGenerator,
    StockStreamGenerator,
)


class TestScenarioStockMarket:
    def test_streaming_equals_baselines_on_market_stream(self):
        generator = StockStreamGenerator(symbols=4, news_probability=0.2, seed=11)
        query = generator.query()
        stream = generator.stream(80).materialise()
        window = 25
        streaming = StreamingEvaluator(hcq_to_pcea(query), window=window)
        naive = NaiveRecomputeEngine(query, window=window)
        delta = DeltaJoinEngine(query, window=window)
        total = 0
        for tup in stream:
            a, b, c = set(streaming.process(tup)), set(naive.process(tup)), set(delta.process(tup))
            assert a == b == c
            total += len(a)
        assert total > 0, "the scenario should produce at least one match"

    def test_cumulative_outputs_equal_cq_semantics(self):
        generator = StockStreamGenerator(symbols=3, news_probability=0.3, seed=5)
        query = generator.query()
        stream = generator.stream(40).materialise()
        evaluator = StreamingEvaluator(hcq_to_pcea(query), window=len(stream) + 1)
        cumulative = set()
        for tup in stream:
            cumulative |= set(evaluator.process(tup))
        assert cumulative == cq_stream_output(query, stream, len(stream) - 1)


class TestScenarioSensorNetwork:
    def test_windowed_alert_detection(self):
        generator = SensorStreamGenerator(sensors=3, alarm_probability=0.15, seed=3)
        query = generator.query()
        stream = generator.stream(120).materialise()
        window = 15
        evaluator = StreamingEvaluator(hcq_to_pcea(query), window=window)
        reference = NaiveRecomputeEngine(query, window=window)
        for position, tup in enumerate(stream):
            assert set(evaluator.process(tup)) == set(reference.process(tup))

    def test_unambiguity_holds_on_generated_streams(self):
        generator = SensorStreamGenerator(sensors=2, alarm_probability=0.3, seed=8)
        pcea = hcq_to_pcea(generator.query())
        stream = generator.stream(25).materialise()
        assert check_unambiguous_on_stream(pcea, stream) == []


class TestScenarioStarWorkload:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=2, max_value=5))
    def test_star_workload_engines_agree(self, arms, key_domain):
        workload = HCQWorkloadGenerator(arms=arms, key_domain=key_domain, seed=arms * 10 + key_domain)
        query = workload.query()
        stream = workload.stream(40).materialise()
        window = 12
        streaming = StreamingEvaluator(hcq_to_pcea(query), window=window)
        reference = DeltaJoinEngine(query, window=window)
        for tup in stream:
            assert set(streaming.process(tup)) == set(reference.process(tup))

    def test_larger_window_never_loses_outputs(self):
        workload = HCQWorkloadGenerator(arms=2, key_domain=3, seed=7)
        query = workload.query()
        stream = workload.stream(60).materialise()
        small = StreamingEvaluator(hcq_to_pcea(query), window=5)
        large = StreamingEvaluator(hcq_to_pcea(query), window=30)
        for tup in stream:
            small_out = set(small.process(tup))
            large_out = set(large.process(tup))
            assert small_out <= large_out


class TestDSLScenario:
    def test_news_then_trades_pattern(self):
        """A sequenced CER pattern over the market stream: news, then a buy, then a sell."""
        generator = StockStreamGenerator(symbols=3, news_probability=0.25, seed=21)
        stream = generator.stream(100).materialise()
        pattern = sequence(atom("News", "s"), atom("Buy", "s", "p"), atom("Sell", "s", "q"))
        pcea = compile_pattern(pattern)
        evaluator = StreamingEvaluator(pcea, window=30)
        total_sequence = sum(len(v) for v in evaluator.run(stream).values())

        unordered = conjunction(atom("News", "s"), atom("Buy", "s", "p"), atom("Sell", "s", "q"))
        unordered_eval = StreamingEvaluator(compile_pattern(unordered), window=30)
        total_conjunction = sum(len(v) for v in unordered_eval.run(stream).values())

        # Sequencing is strictly more restrictive than unordered conjunction.
        assert total_sequence <= total_conjunction

    def test_sequence_outputs_are_subset_of_conjunction_outputs(self):
        generator = StockStreamGenerator(symbols=2, news_probability=0.3, seed=2)
        stream = generator.stream(60).materialise()
        sequenced = compile_pattern(
            sequence(atom("News", "s"), atom("Buy", "s", "p"), atom("Sell", "s", "q"))
        )
        unordered = compile_pattern(
            conjunction(atom("News", "s"), atom("Buy", "s", "p"), atom("Sell", "s", "q"))
        )
        seq_eval = StreamingEvaluator(sequenced, window=40)
        con_eval = StreamingEvaluator(unordered, window=40)
        for tup in stream:
            seq_out = set(seq_eval.process(tup))
            con_out = set(con_eval.process(tup))
            assert seq_out <= con_out
