"""Tests for the pluggable record-operation kernel (repro.core.kernel).

Four layers of protection:

* unit tests of :func:`resolve_kernel`'s precedence and failure semantics
  (explicit knob beats environment beats auto; an explicit ``"native"``
  request never silently degrades while the env-var preference falls back
  for the list-layout ablation arenas) and of :func:`backend_info`'s shape;
* differential property tests: identical streams through the python and
  native kernels — single query, multi query, and the general evaluator —
  must produce identical outputs, identical machine-independent counters
  (``evicted``, nodes created, union copies) and bit-identical snapshots;
* representation independence: a snapshot taken under one backend restores
  under the other (both directions) and processing continues identically;
* forced fallback: ``REPRO_KERNEL=python`` with the extension present keeps
  the hot path on the pure-python kernel (the differential-oracle lane).

Every native-side test is skipped when the extension was not built, so the
suite stays green on toolchain-less installs (where ``setup.py`` degraded
to a pure-python package on purpose).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.harness import collect_engine_counters
from repro.core.arena import ArenaDataStructure
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.kernel import KERNEL_ENV, backend_info, native_available, resolve_kernel
from repro.cq.schema import Tuple
from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.multi.engine import MultiQueryEngine

from helpers import star_query, star_schema, streams_strategy

needs_native = pytest.mark.skipif(
    not native_available(), reason="native kernel extension not built"
)

#: collect_engine_counters keys that legitimately differ across backends —
#: they *describe* the backend rather than the computation.
_BACKEND_DESCRIPTIVE = {"kernel_native_active", "arena_native"}


def _computation_counters(engine):
    return {
        key: value
        for key, value in collect_engine_counters(engine).items()
        if key not in _BACKEND_DESCRIPTIVE
    }


def run_both_kernels(pcea, stream, window, **kwargs):
    """Outputs per position for the python-kernel and native-kernel evaluators."""
    py = StreamingEvaluator(pcea, window=window, arena=True, kernel="python", **kwargs)
    nat = StreamingEvaluator(pcea, window=window, arena=True, kernel="native", **kwargs)
    py_outputs = []
    nat_outputs = []
    for tup in stream:
        py_outputs.append(py.process(tup))
        nat_outputs.append(nat.process(tup))
    return py, nat, py_outputs, nat_outputs


def star2_stream(seed, length, relations=("A1", "A2"), domain=4):
    rng = random.Random(seed)
    return [
        Tuple(rng.choice(relations), (rng.randrange(domain), rng.randrange(3)))
        for _ in range(length)
    ]


class TestResolveKernel:
    def test_explicit_python_always_resolves(self):
        assert resolve_kernel("python", columnar=True) == "python"
        assert resolve_kernel("python", columnar=False) == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend kernel="):
            resolve_kernel("fast")

    def test_unknown_env_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "turbo")
        with pytest.raises(ValueError, match=KERNEL_ENV):
            resolve_kernel(None)

    def test_explicit_knob_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "native" if native_available() else "python")
        assert resolve_kernel("python") == "python"

    def test_auto_prefers_native_only_when_columnar(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        expected = "native" if native_available() else "python"
        assert resolve_kernel(None, columnar=True) == expected
        assert resolve_kernel(None, columnar=False) == "python"

    @needs_native
    def test_explicit_native_rejects_list_layout(self):
        with pytest.raises(ValueError, match="columnar"):
            resolve_kernel("native", columnar=False)

    @needs_native
    def test_env_native_falls_back_for_list_layout(self, monkeypatch):
        # A process-wide preference must not break ablation baselines that
        # construct list-layout arenas on purpose.
        monkeypatch.setenv(KERNEL_ENV, "native")
        assert resolve_kernel(None, columnar=False) == "python"
        ds = ArenaDataStructure(window=8, columnar=False)
        assert ds.kernel == "python"

    def test_backend_info_shape(self):
        info = backend_info()
        assert "python" in info["backends"]
        assert info["native_available"] == native_available()
        if native_available():
            assert "native" in info["backends"]
            assert info["import_error"] is None
        else:
            assert info["native_module"] is None


@needs_native
class TestForcedFallback:
    def test_env_python_with_native_present(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "python")
        engine = StreamingEvaluator(hcq_to_pcea(star_query(2)), window=8)
        assert engine.kernel_info()["active"] == "python"
        assert engine.kernel_info()["native_available"] is True

    def test_auto_picks_native_by_default(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        engine = StreamingEvaluator(hcq_to_pcea(star_query(2)), window=8)
        assert engine.kernel_info()["active"] == "native"

    def test_counters_report_active_backend(self):
        pcea = hcq_to_pcea(star_query(2))
        py = StreamingEvaluator(pcea, window=8, kernel="python")
        nat = StreamingEvaluator(pcea, window=8, kernel="native")
        assert collect_engine_counters(py)["kernel_native_active"] == 0.0
        assert collect_engine_counters(nat)["kernel_native_active"] == 1.0


@needs_native
class TestDifferentialKernels:
    @settings(max_examples=40, deadline=None)
    @given(streams_strategy(star_schema(2), max_length=24, domain=2), st.integers(0, 6))
    def test_single_query_native_equals_python(self, stream, window):
        pcea = hcq_to_pcea(star_query(2))
        py, nat, py_outputs, nat_outputs = run_both_kernels(pcea, stream, window)
        assert nat_outputs == py_outputs  # same valuations, same order
        assert nat.snapshot() == py.snapshot()

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(star_schema(3), max_length=20, domain=2), st.integers(0, 5))
    def test_three_arm_star_native_equals_python(self, stream, window):
        pcea = hcq_to_pcea(star_query(3))
        _, _, py_outputs, nat_outputs = run_both_kernels(pcea, stream, window)
        assert nat_outputs == py_outputs

    def test_long_stream_counters_and_snapshot_bit_identical(self):
        pcea = hcq_to_pcea(star_query(2))
        stream = star2_stream(seed=11, length=4_000)
        py, nat, py_outputs, nat_outputs = run_both_kernels(pcea, stream, window=32)
        assert nat_outputs == py_outputs
        # Expiry actually happened: the comparison covers the sweep path.
        assert nat.ds.released_slabs > 0
        assert nat.evicted == py.evicted
        assert nat.ds.nodes_created == py.ds.nodes_created
        assert nat.ds.union_calls == py.ds.union_calls
        assert nat.ds.union_copies == py.ds.union_copies
        assert _computation_counters(nat) == _computation_counters(py)
        assert nat.snapshot() == py.snapshot()

    def test_general_evaluator_native_equals_python(self):
        pcea = hcq_to_pcea(star_query(2))
        stream = star2_stream(seed=9, length=800, domain=3)
        py = GeneralStreamingEvaluator(pcea, window=16, kernel="python")
        nat = GeneralStreamingEvaluator(pcea, window=16, kernel="native")
        for tup in stream:
            assert nat.process(tup) == py.process(tup)
        assert nat.ds.released_slabs > 0
        assert nat.snapshot() == py.snapshot()

    def test_multi_engine_native_equals_python(self):
        queries = [star_query(2, prefix="A"), star_query(2, prefix="B")]
        stream = star2_stream(seed=5, length=1_500, relations=("A1", "A2", "B1", "B2"), domain=3)
        py = MultiQueryEngine(kernel="python")
        nat = MultiQueryEngine(kernel="native")
        for query in queries:
            py.register(query, window=24)
            nat.register(query, window=24)
        for tup in stream:
            assert nat.process(tup) == py.process(tup)
        assert nat.evicted == py.evicted
        assert nat.memory_info()["released_slabs"] > 0
        assert nat.snapshot() == py.snapshot()


@needs_native
class TestCrossBackendSnapshot:
    @pytest.mark.parametrize(
        "first,second", [("python", "native"), ("native", "python")]
    )
    def test_snapshot_restores_across_backends(self, first, second):
        pcea = hcq_to_pcea(star_query(2))
        stream = star2_stream(seed=7, length=2_000)
        half = len(stream) // 2
        source = StreamingEvaluator(pcea, window=32, kernel=first)
        for tup in stream[:half]:
            source.process(tup)
        snap = source.snapshot()

        target = StreamingEvaluator(pcea, window=32, kernel=second)
        target.restore(snap)
        assert target.kernel_info()["active"] == second  # restore keeps the backend
        for tup in stream[half:]:
            assert target.process(tup) == source.process(tup)
        assert target.evicted == source.evicted
        assert target.ds.nodes_created == source.ds.nodes_created
        assert target.snapshot() == source.snapshot()

    @pytest.mark.parametrize(
        "first,second", [("python", "native"), ("native", "python")]
    )
    def test_repeated_cross_restore_round_trips(self, first, second):
        # python -> native -> python (and the reverse) over the same snapshot:
        # the serialised form must be a fixed point under either backend.
        pcea = hcq_to_pcea(star_query(2))
        stream = star2_stream(seed=13, length=600)
        source = StreamingEvaluator(pcea, window=16, kernel=first)
        for tup in stream:
            source.process(tup)
        snap = source.snapshot()
        other = StreamingEvaluator(pcea, window=16, kernel=second)
        other.restore(snap)
        assert other.snapshot() == snap
        back = StreamingEvaluator(pcea, window=16, kernel=first)
        back.restore(other.snapshot())
        assert back.snapshot() == snap
