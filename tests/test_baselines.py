"""Tests for the baseline engines (repro.baselines) against the same ground truth."""

from hypothesis import given, settings, strategies as st

from repro.baselines.ccea_engine import CCEAStreamingEngine
from repro.baselines.delta_join import DeltaJoinEngine
from repro.baselines.naive import NaiveRecomputeEngine
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.cq.stream_semantics import cq_stream_new_outputs
from repro.cq.schema import Tuple
from repro.valuation import Valuation

from helpers import (
    QUERY_Q0,
    QUERY_Q2,
    SIGMA0,
    STREAM_S0,
    example_ccea_c0,
    star_query,
    star_schema,
    streams_strategy,
)


class TestNaiveRecomputeEngine:
    def test_matches_ground_truth_on_s0(self):
        engine = NaiveRecomputeEngine(QUERY_Q0, window=100)
        for position, tup in enumerate(STREAM_S0):
            expected = cq_stream_new_outputs(QUERY_Q0, STREAM_S0, position, window=100)
            assert set(engine.process(tup)) == expected

    def test_window_eviction(self):
        engine = NaiveRecomputeEngine(QUERY_Q0, window=2)
        results = engine.run(STREAM_S0)
        assert results[5] == []  # the only matches at 5 need positions 0/1

    def test_run_interface(self):
        engine = NaiveRecomputeEngine(QUERY_Q0, window=100)
        results = engine.run(STREAM_S0)
        assert len(results) == len(STREAM_S0)
        assert {v for v in results[5]} == cq_stream_new_outputs(QUERY_Q0, STREAM_S0, 5)

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=8, domain=2), st.integers(min_value=0, max_value=6))
    def test_random_streams_with_windows(self, stream, window):
        engine = NaiveRecomputeEngine(QUERY_Q0, window=window)
        for position, tup in enumerate(stream):
            expected = cq_stream_new_outputs(QUERY_Q0, stream, position, window=window)
            assert set(engine.process(tup)) == expected


class TestDeltaJoinEngine:
    def test_matches_ground_truth_on_s0(self):
        engine = DeltaJoinEngine(QUERY_Q0, window=100)
        for position, tup in enumerate(STREAM_S0):
            expected = cq_stream_new_outputs(QUERY_Q0, STREAM_S0, position, window=100)
            assert set(engine.process(tup)) == expected

    def test_self_join_query_reuses_current_tuple(self):
        engine = DeltaJoinEngine(QUERY_Q2, window=100)
        stream = [Tuple("U", (0, 1)), Tuple("R", (0, 1, 2))]
        engine.process(stream[0])
        outputs = set(engine.process(stream[1]))
        assert Valuation({0: {1}, 1: {1}, 2: {0}}) in outputs

    def test_window_eviction(self):
        engine = DeltaJoinEngine(QUERY_Q0, window=2)
        results = engine.run(STREAM_S0)
        assert results[5] == []

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=8, domain=2), st.integers(min_value=0, max_value=6))
    def test_random_streams_with_windows(self, stream, window):
        engine = DeltaJoinEngine(QUERY_Q0, window=window)
        for position, tup in enumerate(stream):
            expected = cq_stream_new_outputs(QUERY_Q0, stream, position, window=window)
            assert set(engine.process(tup)) == expected

    @settings(max_examples=15, deadline=None)
    @given(streams_strategy(QUERY_Q2.infer_schema(), max_length=7, domain=2))
    def test_self_join_random_streams(self, stream):
        engine = DeltaJoinEngine(QUERY_Q2, window=1000)
        for position, tup in enumerate(stream):
            expected = cq_stream_new_outputs(QUERY_Q2, stream, position, window=1000)
            assert set(engine.process(tup)) == expected


class TestCCEAStreamingEngine:
    def test_matches_naive_ccea_semantics(self):
        ccea = example_ccea_c0()
        engine = CCEAStreamingEngine(ccea, window=100)
        for position, tup in enumerate(STREAM_S0):
            streaming = set(engine.process(tup))
            naive = ccea.output_at(STREAM_S0, position)
            assert streaming == naive

    def test_window_behaviour(self):
        engine = CCEAStreamingEngine(example_ccea_c0(), window=2)
        results = engine.run(STREAM_S0)
        assert results[5] == []
        assert engine.position == len(STREAM_S0) - 1

    def test_ccea_misses_pcea_outputs(self):
        """Expressiveness gap (Prop. 3.4): the chain engine reports strictly fewer
        matches than the hierarchical-query engine on the same stream."""
        ccea_engine = CCEAStreamingEngine(example_ccea_c0(), window=100)
        pcea_engine = StreamingEvaluator(hcq_to_pcea(QUERY_Q0), window=100)
        ccea_total = sum(len(v) for v in ccea_engine.run(STREAM_S0).values())
        pcea_total = sum(len(v) for v in pcea_engine.run(STREAM_S0).values())
        assert ccea_total < pcea_total


class TestEnginesAgree:
    @settings(max_examples=15, deadline=None)
    @given(streams_strategy(star_schema(2), max_length=9, domain=2), st.integers(min_value=1, max_value=6))
    def test_all_engines_agree_on_star_query(self, stream, window):
        query = star_query(2)
        streaming = StreamingEvaluator(hcq_to_pcea(query), window=window)
        naive = NaiveRecomputeEngine(query, window=window)
        delta = DeltaJoinEngine(query, window=window)
        for tup in stream:
            a = set(streaming.process(tup))
            b = set(naive.process(tup))
            c = set(delta.process(tup))
            assert a == b == c
