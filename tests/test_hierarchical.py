"""Tests for the hierarchy test and q-tree construction (repro.cq.hierarchical)."""

import pytest
from hypothesis import given, strategies as st

from repro.cq.hierarchical import (
    NotHierarchicalError,
    build_q_tree,
    is_hierarchical,
    validate_q_tree,
)
from repro.cq.query import Atom, ConjunctiveQuery, Variable

from helpers import (
    QUERY_NON_HIERARCHICAL,
    QUERY_Q0,
    QUERY_Q1,
    QUERY_Q2,
    QUERY_STARDEEP,
    star_query,
)


class TestIsHierarchical:
    def test_paper_examples(self):
        assert is_hierarchical(QUERY_Q0)
        assert not is_hierarchical(QUERY_Q1)  # atoms(x) and atoms(y) overlap without containment
        assert is_hierarchical(QUERY_Q2)
        assert is_hierarchical(QUERY_STARDEEP)

    def test_non_hierarchical_triangle_of_atoms(self):
        assert not is_hierarchical(QUERY_NON_HIERARCHICAL)

    def test_full_requirement_can_be_relaxed(self):
        x, y = Variable("x"), Variable("y")
        projection = ConjunctiveQuery([x], [Atom("T", (x,)), Atom("S", (x, y))])
        assert not is_hierarchical(projection)
        assert is_hierarchical(projection, require_full=False)

    def test_single_atom_is_hierarchical(self):
        x = Variable("x")
        assert is_hierarchical(ConjunctiveQuery([x], [Atom("T", (x,))]))

    def test_star_queries_are_hierarchical(self):
        for arms in range(1, 6):
            assert is_hierarchical(star_query(arms))

    def test_two_relation_cross_is_not_hierarchical(self):
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery(
            [x, y], [Atom("A", (x,)), Atom("B", (y,)), Atom("C", (x, y))]
        )
        assert not is_hierarchical(query)


class TestQTree:
    def test_q0_q_tree_structure(self):
        tree = build_q_tree(QUERY_Q0)
        validate_q_tree(tree)
        root = tree.root
        assert root.label == Variable("x")
        # The leaf of atom 0 (T(x)) hangs directly below x; atoms 1 and 2 below y.
        assert tree.path_variables(0) == {Variable("x")}
        assert tree.path_variables(1) == {Variable("x"), Variable("y")}
        assert tree.path_variables(2) == {Variable("x"), Variable("y")}

    def test_deep_query_q_tree(self):
        tree = build_q_tree(QUERY_STARDEEP)
        validate_q_tree(tree)
        # Atom 2 = T(x, w): its path carries exactly {x, w}.
        assert tree.path_variables(2) == {Variable("x"), Variable("w")}

    def test_q_tree_of_self_join_query(self):
        tree = build_q_tree(QUERY_Q2)
        validate_q_tree(tree)
        assert tree.path_variables(2) == {Variable("x"), Variable("y")}

    def test_compact_tree_has_no_unary_variables(self):
        for query in (QUERY_Q0, QUERY_Q2, QUERY_STARDEEP, star_query(4)):
            compact = build_q_tree(query).compacted()
            validate_q_tree(compact)
            for node in compact.variable_nodes():
                assert len(node.children) >= 2

    def test_compact_tree_of_q0_is_same_shape(self):
        compact = build_q_tree(QUERY_Q0).compacted()
        assert compact.root.label == Variable("x")
        assert {n.label for n in compact.variable_nodes()} == {Variable("x"), Variable("y")}

    def test_descendant_atoms(self):
        tree = build_q_tree(QUERY_Q0)
        assert tree.descendant_atoms(Variable("x")) == {0, 1, 2}
        assert tree.descendant_atoms(Variable("y")) == {1, 2}

    def test_ancestors_and_parent_map(self):
        tree = build_q_tree(QUERY_Q0)
        parents = tree.parent_map()
        assert parents[tree.root.label] is None
        ancestors = tree.ancestors(1)
        assert ancestors[0] == tree.root.label
        assert ancestors[-1] == 1

    def test_depth(self):
        assert build_q_tree(QUERY_Q0).depth() >= 2

    def test_node_of_missing_label(self):
        tree = build_q_tree(QUERY_Q0)
        with pytest.raises(KeyError):
            tree.node_of(Variable("nope"))

    def test_pretty_rendering_mentions_all_atoms(self):
        text = build_q_tree(QUERY_STARDEEP).pretty()
        for atom in QUERY_STARDEEP.atoms:
            assert str(atom) in text

    def test_rejects_non_hierarchical(self):
        with pytest.raises(NotHierarchicalError):
            build_q_tree(QUERY_NON_HIERARCHICAL)

    def test_rejects_non_full(self):
        x, y = Variable("x"), Variable("y")
        with pytest.raises(NotHierarchicalError):
            build_q_tree(ConjunctiveQuery([x], [Atom("S", (x, y))]))

    def test_rejects_disconnected(self):
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery([x, y], [Atom("T", (x,)), Atom("U", (y,))])
        with pytest.raises(NotHierarchicalError):
            build_q_tree(query)


class TestRandomHierarchicalQueries:
    @given(st.integers(min_value=1, max_value=6))
    def test_star_queries_admit_valid_q_trees(self, arms):
        query = star_query(arms)
        tree = build_q_tree(query)
        validate_q_tree(tree)
        compact = tree.compacted()
        validate_q_tree(compact)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=3))
    def test_telescope_queries(self, depth, extra_leaf_atoms):
        """Nested-variable queries (deep q-trees) plus a few atoms repeated at the root."""
        variables = [Variable(f"x{i}") for i in range(depth)]
        atoms = [Atom(f"L{j}", tuple(variables[: j + 1])) for j in range(depth)]
        for k in range(extra_leaf_atoms):
            atoms.append(Atom(f"E{k}", (variables[0],)))
        query = ConjunctiveQuery(variables, atoms, name="Tele")
        assert is_hierarchical(query)
        tree = build_q_tree(query)
        validate_q_tree(tree)
        validate_q_tree(tree.compacted())
