"""Tests for the Theorem 4.1 construction (repro.core.hcq_to_pcea).

The central property: for every hierarchical CQ ``Q`` and stream ``S``, the
PCEA ``P_Q`` outputs at position ``n`` exactly the *new* matches of ``Q`` at
``n`` (the t-homomorphisms whose latest tuple is ``t_n``), and it is
unambiguous.  Both the naive PCEA evaluator and Algorithm 1 are checked against
the naive CQ evaluator.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import SYNTHETIC_ROOT_NAME, build_structure_tree, hcq_to_pcea
from repro.core.pcea import check_unambiguous_on_stream
from repro.cq.hierarchical import NotHierarchicalError
from repro.cq.query import Atom, ConjunctiveQuery, Variable
from repro.cq.schema import Schema, Tuple
from repro.cq.stream_semantics import cq_stream_new_outputs

from helpers import (
    QUERY_NON_HIERARCHICAL,
    QUERY_Q0,
    QUERY_Q2,
    QUERY_STARDEEP,
    SIGMA0,
    STREAM_S0,
    star_query,
    star_schema,
    streams_strategy,
)

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def assert_equivalent_on_stream(query, stream, window=None, use_streaming=True, max_nodes=200_000):
    """Check naive-PCEA and Algorithm-1 outputs against the CQ ground truth."""
    pcea = hcq_to_pcea(query)
    evaluator = (
        StreamingEvaluator(pcea, window if window is not None else len(stream) + 1, audit=True)
        if use_streaming
        else None
    )
    for position, tup in enumerate(stream):
        expected = cq_stream_new_outputs(query, stream, position, window=window)
        naive = pcea.output_at(stream, position, window=window)
        assert naive == expected, (
            f"naive PCEA mismatch at {position}: {sorted(map(repr, naive))} "
            f"!= {sorted(map(repr, expected))}"
        )
        if evaluator is not None:
            streaming = set(evaluator.process(tup))
            assert streaming == expected, (
                f"streaming mismatch at {position}: {sorted(map(repr, streaming))} "
                f"!= {sorted(map(repr, expected))}"
            )
    return pcea


class TestConstructionStructure:
    def test_q0_states_are_q_tree_nodes(self):
        pcea = hcq_to_pcea(QUERY_Q0)
        assert {0, 1, 2, Variable("x"), Variable("y")} == set(pcea.states)
        assert pcea.final == {Variable("x")}
        assert pcea.labels == {0, 1, 2}

    def test_q0_transition_count_matches_figure_2(self):
        """Figure 2: three initial transitions plus one per (atom, path variable)."""
        pcea = hcq_to_pcea(QUERY_Q0)
        initial = [t for t in pcea.transitions if t.is_initial]
        joining = [t for t in pcea.transitions if not t.is_initial]
        assert len(initial) == 3
        # T(x) has path {x}; S(x,y) and R(x,y) have path {x, y}: 1 + 2 + 2 = 5.
        assert len(joining) == 5

    def test_only_equality_predicates(self):
        for query in (QUERY_Q0, QUERY_Q2, QUERY_STARDEEP, star_query(4)):
            assert hcq_to_pcea(query).uses_only_equality_predicates()

    def test_quadratic_size_without_self_joins(self):
        """Theorem 4.1: without self joins |P_Q| is O(|Q|^2)."""
        sizes = []
        for arms in range(1, 9):
            query = star_query(arms)
            query_size = sum(1 + a.arity for a in query.atoms)
            sizes.append((query_size, hcq_to_pcea(query).size()))
        for query_size, pcea_size in sizes:
            assert pcea_size <= 4 * query_size * query_size + 10

    def test_self_join_construction_is_larger(self):
        x = Variable("x")
        atoms = [Atom("R", (x, Variable(f"y{j}"))) for j in range(3)]
        query = ConjunctiveQuery([x] + [Variable(f"y{j}") for j in range(3)], atoms)
        with_self_joins = hcq_to_pcea(query)
        without = hcq_to_pcea(star_query(3))
        assert with_self_joins.size() > without.size()

    def test_single_atom_query(self):
        query = ConjunctiveQuery([X], [Atom("T", (X,))])
        pcea = hcq_to_pcea(query)
        assert len(pcea.transitions) == 1
        stream = [Tuple("T", (5,)), Tuple("S", (1, 2)), Tuple("T", (7,))]
        assert_equivalent_on_stream(query, stream)

    def test_rejects_non_hierarchical(self):
        with pytest.raises(NotHierarchicalError):
            hcq_to_pcea(QUERY_NON_HIERARCHICAL)

    def test_rejects_non_full(self):
        with pytest.raises(NotHierarchicalError):
            hcq_to_pcea(ConjunctiveQuery([X], [Atom("S", (X, Y))]))

    def test_structure_tree_adds_synthetic_root_for_disconnected(self):
        query = ConjunctiveQuery([X, Y], [Atom("T", (X,)), Atom("U", (Y,))])
        tree = build_structure_tree(query)
        assert tree.root_variable().name == SYNTHETIC_ROOT_NAME

    def test_structure_tree_no_synthetic_root_when_connected(self):
        tree = build_structure_tree(QUERY_Q0)
        assert tree.root_variable() == Variable("x")


class TestEquivalenceOnPaperExamples:
    def test_q0_on_s0(self):
        pcea = assert_equivalent_on_stream(QUERY_Q0, STREAM_S0)
        assert check_unambiguous_on_stream(pcea, STREAM_S0) == []

    def test_q0_with_windows(self):
        for window in (0, 1, 2, 4, 10):
            assert_equivalent_on_stream(QUERY_Q0, STREAM_S0, window=window)

    def test_deep_query(self):
        stream = [
            Tuple("U", (1, 2)),
            Tuple("R", (1, 2, 3)),
            Tuple("T", (1, 9)),
            Tuple("S", (1, 2, 7)),
            Tuple("S", (1, 5, 7)),
            Tuple("R", (1, 2, 4)),
            Tuple("T", (2, 9)),
            Tuple("U", (1, 2)),
        ]
        pcea = assert_equivalent_on_stream(QUERY_STARDEEP, stream)
        assert check_unambiguous_on_stream(pcea, stream) == []

    def test_self_join_query_q2(self):
        stream = [
            Tuple("R", (0, 1, 2)),
            Tuple("U", (0, 1)),
            Tuple("R", (0, 1, 3)),
            Tuple("R", (0, 2, 2)),
            Tuple("U", (0, 2)),
            Tuple("R", (0, 1, 2)),
            Tuple("U", (0, 1)),
        ]
        pcea = assert_equivalent_on_stream(QUERY_Q2, stream)
        assert check_unambiguous_on_stream(pcea, stream) == []

    def test_pure_self_join_single_relation(self):
        """Q(x, y, z) <- E(x, y), E(x, z): every pair (and every single tuple twice)."""
        query = ConjunctiveQuery([X, Y, Z], [Atom("E", (X, Y)), Atom("E", (X, Z))])
        stream = [
            Tuple("E", (0, 1)),
            Tuple("E", (0, 2)),
            Tuple("E", (1, 1)),
            Tuple("E", (0, 1)),
        ]
        assert_equivalent_on_stream(query, stream)

    def test_disconnected_query(self):
        query = ConjunctiveQuery([X, Y], [Atom("T", (X,)), Atom("U", (Y,))])
        stream = [
            Tuple("T", (1,)),
            Tuple("U", (5,)),
            Tuple("T", (2,)),
            Tuple("U", (6,)),
            Tuple("U", (5,)),
        ]
        assert_equivalent_on_stream(query, stream)

    def test_disconnected_query_with_self_joins(self):
        query = ConjunctiveQuery([X, Y], [Atom("T", (X,)), Atom("T", (Y,)), Atom("U", (Y,))])
        # T(x) is disconnected from T(y), U(y) only through the hierarchy of y... actually
        # x and y never co-occur, so the query is Gaifman-disconnected and has a self join.
        stream = [Tuple("T", (1,)), Tuple("U", (1,)), Tuple("T", (2,)), Tuple("U", (2,))]
        assert_equivalent_on_stream(query, stream)

    def test_query_with_constants(self):
        query = ConjunctiveQuery([Y], [Atom("S", (2, Y)), Atom("R", (2, Y))])
        stream = [
            Tuple("S", (2, 11)),
            Tuple("R", (2, 11)),
            Tuple("S", (3, 11)),
            Tuple("R", (2, 12)),
            Tuple("S", (2, 12)),
        ]
        assert_equivalent_on_stream(query, stream)

    def test_query_with_repeated_variable_in_atom(self):
        query = ConjunctiveQuery([X, Y], [Atom("E", (X, X)), Atom("F", (X, Y))])
        stream = [
            Tuple("E", (1, 1)),
            Tuple("E", (1, 2)),
            Tuple("F", (1, 5)),
            Tuple("E", (5, 5)),
            Tuple("F", (5, 5)),
        ]
        assert_equivalent_on_stream(query, stream)

    def test_force_general_construction_agrees_with_simple(self):
        stream = STREAM_S0
        simple = hcq_to_pcea(QUERY_Q0, force_general=False)
        general = hcq_to_pcea(QUERY_Q0, force_general=True)
        for position in range(len(stream)):
            assert simple.output_at(stream, position) == general.output_at(stream, position)


class TestEquivalenceOnRandomStreams:
    @settings(max_examples=40, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=9, domain=2))
    def test_q0_random_streams(self, stream):
        assert_equivalent_on_stream(QUERY_Q0, stream)

    @settings(max_examples=25, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=8, domain=2), st.integers(min_value=0, max_value=6))
    def test_q0_random_streams_with_window(self, stream, window):
        assert_equivalent_on_stream(QUERY_Q0, stream, window=window)

    @settings(max_examples=25, deadline=None)
    @given(streams_strategy(star_schema(3), max_length=9, domain=2))
    def test_star3_random_streams(self, stream):
        assert_equivalent_on_stream(star_query(3), stream)

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(Schema({"E": 2, "U": 1}), max_length=7, domain=2))
    def test_self_join_random_streams(self, stream):
        query = ConjunctiveQuery(
            [X, Y, Z], [Atom("E", (X, Y)), Atom("E", (X, Z)), Atom("U", (X,))]
        )
        assert_equivalent_on_stream(query, stream)

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(Schema({"R": 2, "S": 3, "T": 1, "U": 2}), max_length=8, domain=2))
    def test_deep_query_random_streams(self, stream):
        # QUERY_STARDEEP uses R(x,y,z), S(x,y,v), T(x,w), U(x,y): adjust schema arities.
        schema = Schema({"R": 3, "S": 3, "T": 2, "U": 2})
        fixed = [Tuple(t.relation, t.values[: schema.arity(t.relation)] + (0,) * max(0, schema.arity(t.relation) - t.arity)) for t in stream]
        assert_equivalent_on_stream(QUERY_STARDEEP, fixed)

    @settings(max_examples=25, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=8, domain=2))
    def test_unambiguity_on_random_streams(self, stream):
        pcea = hcq_to_pcea(QUERY_Q0)
        assert check_unambiguous_on_stream(pcea, stream) == []

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=7, domain=2))
    def test_general_construction_agrees_with_simple_on_random_streams(self, stream):
        """The self-join (general) construction specialises to the simple one."""
        simple = hcq_to_pcea(QUERY_Q0, force_general=False)
        general = hcq_to_pcea(QUERY_Q0, force_general=True)
        for position in range(len(stream)):
            assert simple.output_at(stream, position) == general.output_at(stream, position)

    @settings(max_examples=15, deadline=None)
    @given(
        streams_strategy(Schema({"E": 2, "U": 1}), max_length=6, domain=2),
        st.integers(min_value=0, max_value=4),
    )
    def test_self_join_random_streams_with_window(self, stream, window):
        query = ConjunctiveQuery(
            [X, Y, Z], [Atom("E", (X, Y)), Atom("E", (X, Z)), Atom("U", (X,))]
        )
        assert_equivalent_on_stream(query, stream, window=window)
