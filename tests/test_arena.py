"""Tests for the arena-backed ``DS_w`` (repro.core.arena) and its wiring.

Three layers of protection:

* unit tests of :class:`ArenaDataStructure` semantics (mirroring the object
  structure's test suite: extend / union / windowed enumeration / persistence
  / heap condition), plus the slab-release protocol specifics (release order,
  external-reference blocking, released ids reading as expired);
* differential property tests: the arena and object evaluators — single
  query, multi query, and the general (non-hashed) evaluator — must produce
  identical outputs position by position across random HCQ workloads,
  including windows small enough that expiry happens mid-stream;
* memory-bound regression: the live arena node count over a long stream stays
  ``O(window)`` while the object structure's allocation total grows with the
  stream.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arena import ArenaDataStructure, BOTTOM_ID
from repro.core.datastructure import DataStructure
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.cq.schema import Tuple
from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.multi.engine import MultiQueryEngine
from repro.valuation import Valuation

from helpers import star_query, star_schema, streams_strategy


def collect(ds, node, position):
    return set(ds.enumerate(node, position))


def collect_all(ds, node):
    return set(ds.enumerate_all(node))


class TestArenaBasics:
    def test_leaf_node_represents_single_valuation(self):
        ds = ArenaDataStructure(window=10)
        node = ds.extend({"a"}, 3, [])
        assert collect_all(ds, node) == {Valuation({"a": {3}})}
        assert ds.max_start_of(node) == 3
        assert ds.position_of(node) == 3
        assert ds.labels_of(node) == frozenset({"a"})

    def test_extend_products_children(self):
        ds = ArenaDataStructure(window=10)
        left = ds.extend({"a"}, 0, [])
        right = ds.extend({"b"}, 1, [])
        product = ds.extend({"c"}, 2, [left, right])
        assert collect_all(ds, product) == {Valuation({"a": {0}, "b": {1}, "c": {2}})}
        assert ds.max_start_of(product) == 0

    def test_extend_validates_children(self):
        ds = ArenaDataStructure(window=10)
        child = ds.extend({"a"}, 5, [])
        with pytest.raises(ValueError):
            ds.extend({"b"}, 5, [child])  # equal position not allowed
        with pytest.raises(ValueError):
            ds.extend({"b"}, 6, [BOTTOM_ID])

    def test_window_validation(self):
        with pytest.raises(ValueError):
            ArenaDataStructure(window=-1)

    def test_union_is_set_union_and_persistent(self):
        ds = ArenaDataStructure(window=10)
        first = ds.extend({"a"}, 0, [])
        second = ds.extend({"a"}, 1, [])
        union = ds.union(first, second)
        assert collect_all(ds, union) == {Valuation({"a": {0}}), Valuation({"a": {1}})}
        # Persistence: the original nodes keep their own semantics.
        assert collect_all(ds, first) == {Valuation({"a": {0}})}
        assert collect_all(ds, second) == {Valuation({"a": {1}})}
        third = ds.extend({"a"}, 2, [])
        bigger = ds.union(union, third)
        assert collect_all(ds, union) == {Valuation({"a": {0}}), Valuation({"a": {1}})}
        assert len(collect_all(ds, bigger)) == 3

    def test_union_requires_fresh_second_argument(self):
        ds = ArenaDataStructure(window=10)
        first = ds.extend({"a"}, 0, [])
        second = ds.extend({"a"}, 1, [])
        union = ds.union(first, second)
        third = ds.extend({"a"}, 2, [])
        with pytest.raises(ValueError):
            ds.union(third, union)
        with pytest.raises(ValueError):
            ds.union(first, BOTTOM_ID)

    def test_union_prunes_expired_left_tree(self):
        ds = ArenaDataStructure(window=2)
        old = ds.extend({"a"}, 0, [])
        fresh = ds.extend({"a"}, 10, [])
        union = ds.union(old, fresh)
        assert collect(ds, union, 10) == {Valuation({"a": {10}})}

    def test_window_filters_old_valuations(self):
        ds = ArenaDataStructure(window=3)
        nodes = [ds.extend({"a"}, position, []) for position in range(6)]
        accumulator = nodes[0]
        for node in nodes[1:]:
            accumulator = ds.union(accumulator, node)
        assert collect(ds, accumulator, 6) == {Valuation({"a": {p}}) for p in (3, 4, 5)}

    def test_heap_condition_maintained(self):
        ds = ArenaDataStructure(window=100)
        accumulator = ds.extend({"a"}, 0, [])
        for position in range(1, 30):
            accumulator = ds.union(accumulator, ds.extend({"a"}, position, []))
        assert ds.check_heap_condition(accumulator)
        assert len(collect_all(ds, accumulator)) == 30

    def test_expired_and_bottom(self):
        ds = ArenaDataStructure(window=2)
        node = ds.extend({"a"}, 0, [])
        assert collect(ds, node, 10) == set()
        assert ds.expired(node, 10)
        assert not ds.expired(node, 2)
        assert ds.expired(BOTTOM_ID, 0)
        assert collect(ds, BOTTOM_ID, 3) == set()

    def test_matches_object_structure_on_random_interleavings(self):
        rng = random.Random(7)
        arena = ArenaDataStructure(window=5)
        oracle = DataStructure(window=5)
        arena_acc = oracle_acc = None
        position = 0
        for _ in range(200):
            position += rng.randrange(1, 3)
            fresh_a = arena.extend({"a"}, position, [])
            fresh_o = oracle.extend({"a"}, position, [])
            if arena_acc is None:
                arena_acc, oracle_acc = fresh_a, fresh_o
            else:
                arena_acc = arena.union(arena_acc, fresh_a)
                oracle_acc = oracle.union(oracle_acc, fresh_o)
            # Same outputs *and* the same order (the arena mirrors the object
            # traversal exactly, so the representations are interchangeable).
            assert list(arena.enumerate(arena_acc, position)) == list(
                oracle.enumerate(oracle_acc, position)
            )
        assert arena.union_calls == oracle.union_calls
        assert arena.union_copies == oracle.union_copies
        assert arena.nodes_created == oracle.nodes_created


class TestSlabRelease:
    def test_slabs_released_once_expired(self):
        ds = ArenaDataStructure(window=8, slab_capacity=64)
        accumulator = None
        for position in range(2_000):
            fresh = ds.extend({"a"}, position, [])
            accumulator = fresh if accumulator is None else ds.union(accumulator, fresh)
            ds.release_expired(position)
        assert ds.released_slabs > 0
        # Live storage is bounded by a few slabs, not the stream length.
        assert ds.live_node_count() <= 4 * 64
        stats = ds.memory_stats()
        assert stats["live_nodes"] == ds.live_node_count()
        assert stats["released_slabs"] == ds.released_slabs
        # The tail of the stream still enumerates correctly after releases.
        assert collect(ds, accumulator, 1_999) == {
            Valuation({"a": {p}}) for p in range(1_991, 2_000)
        }

    def test_external_reference_blocks_release(self):
        ds = ArenaDataStructure(window=4, slab_capacity=64)
        pinned = ds.extend({"a"}, 0, [])
        ds.add_ref(pinned)
        filler = None
        for position in range(1, 500):
            fresh = ds.extend({"a"}, position, [])
            filler = fresh if filler is None else ds.union(filler, fresh)
            ds.release_expired(position)
        # The first slab is expired but referenced: nothing may be released
        # (release is strictly in allocation order behind it).
        assert ds.released_slabs == 0
        assert ds.max_start_of(pinned) == 0
        ds.drop_ref(pinned)
        ds.release_expired(499)
        assert ds.released_slabs > 0
        # The released id now reads as expired-forever, never as garbage.
        assert ds.expired(pinned, 499)
        assert ds.max_start_of(pinned) < 0

    def test_check_simple_parity(self):
        arena = ArenaDataStructure(window=10)
        oracle = DataStructure(window=10)
        for ds in (arena, oracle):
            first = ds.extend({"a"}, 0, [])
            product = ds.extend({"b"}, 2, [first])
            assert ds.check_simple(product)
            overlapping = ds.extend({"b"}, 3, [first, ds.extend({"a"}, 1, [first])])
            assert not ds.check_simple(overlapping)

    def test_released_ids_are_pruned_not_dereferenced(self):
        ds = ArenaDataStructure(window=2, slab_capacity=64)
        old = ds.extend({"a"}, 0, [])
        accumulator = old
        for position in range(1, 300):
            accumulator = ds.union(accumulator, ds.extend({"a"}, position, []))
            ds.release_expired(position)
        assert ds.released_slabs > 0
        # Union links from live tops into released slabs enumerate nothing and
        # are pruned by further unions, exactly like expired object subtrees.
        assert collect(ds, accumulator, 299) == {
            Valuation({"a": {p}}) for p in (297, 298, 299)
        }
        assert ds.check_heap_condition(accumulator)
        assert ds.union_depth(accumulator) >= 1


def run_both(pcea, stream, window, **kwargs):
    """Outputs per position for the arena and object evaluators."""
    fast = StreamingEvaluator(pcea, window=window, arena=True, **kwargs)
    oracle = StreamingEvaluator(pcea, window=window, arena=False, **kwargs)
    fast_outputs = []
    oracle_outputs = []
    for tup in stream:
        fast_outputs.append(fast.process(tup))
        oracle_outputs.append(oracle.process(tup))
    return fast, oracle, fast_outputs, oracle_outputs


class TestDifferentialEvaluators:
    @settings(max_examples=60, deadline=None)
    @given(streams_strategy(star_schema(2), max_length=24, domain=2), st.integers(0, 6))
    def test_single_query_arena_equals_object(self, stream, window):
        pcea = hcq_to_pcea(star_query(2))
        _, _, fast_outputs, oracle_outputs = run_both(pcea, stream, window)
        assert fast_outputs == oracle_outputs  # same valuations, same order

    @settings(max_examples=25, deadline=None)
    @given(streams_strategy(star_schema(3), max_length=20, domain=2), st.integers(0, 5))
    def test_three_arm_star_arena_equals_object(self, stream, window):
        pcea = hcq_to_pcea(star_query(3))
        _, _, fast_outputs, oracle_outputs = run_both(pcea, stream, window)
        assert fast_outputs == oracle_outputs

    def test_long_stream_with_mid_stream_expiry(self):
        rng = random.Random(11)
        pcea = hcq_to_pcea(star_query(2))
        stream = [
            Tuple(rng.choice(["A1", "A2"]), (rng.randrange(4), rng.randrange(3)))
            for _ in range(4_000)
        ]
        fast, oracle, fast_outputs, oracle_outputs = run_both(pcea, stream, window=32)
        assert fast_outputs == oracle_outputs
        assert fast.evicted == oracle.evicted
        assert fast.hash_table_size() == oracle.hash_table_size()
        # The arena actually reclaimed (the point of the exercise) ...
        assert fast.ds.released_slabs > 0
        # ... and machine-independent operation counts are identical.
        assert fast.ds.nodes_created == oracle.ds.nodes_created
        assert fast.ds.union_copies == oracle.ds.union_copies

    def test_batched_ingestion_arena_equals_object(self):
        rng = random.Random(3)
        pcea = hcq_to_pcea(star_query(2))
        stream = [
            Tuple(rng.choice(["A1", "A2"]), (rng.randrange(3), rng.randrange(3)))
            for _ in range(600)
        ]
        fast = StreamingEvaluator(pcea, window=16, arena=True)
        oracle = StreamingEvaluator(pcea, window=16, arena=False)
        fast_outputs = fast.process_many(stream)
        oracle_outputs = oracle.process_many(stream)
        assert fast_outputs == oracle_outputs
        assert fast.ds.released_slabs > 0

    def test_multi_engine_arena_equals_object(self):
        rng = random.Random(5)
        queries = [star_query(2, prefix="A"), star_query(2, prefix="B")]
        relations = ["A1", "A2", "B1", "B2"]
        stream = [
            Tuple(rng.choice(relations), (rng.randrange(3), rng.randrange(3)))
            for _ in range(1_500)
        ]
        fast = MultiQueryEngine(arena=True)
        oracle = MultiQueryEngine(arena=False)
        for query in queries:
            fast.register(query, window=24)
            oracle.register(query, window=24)
        for tup in stream:
            assert fast.process(tup) == oracle.process(tup)
        assert fast.evicted == oracle.evicted
        assert fast.memory_info()["released_slabs"] > 0

    def test_general_evaluator_arena_equals_object(self):
        rng = random.Random(9)
        pcea = hcq_to_pcea(star_query(2))
        stream = [
            Tuple(rng.choice(["A1", "A2"]), (rng.randrange(3), rng.randrange(3)))
            for _ in range(800)
        ]
        fast = GeneralStreamingEvaluator(pcea, window=16, arena=True)
        oracle = GeneralStreamingEvaluator(pcea, window=16, arena=False)
        for tup in stream:
            assert fast.process(tup) == oracle.process(tup)
        assert fast.ds.released_slabs > 0

    def test_audit_mode_works_on_arena(self):
        pcea = hcq_to_pcea(star_query(2))
        rng = random.Random(1)
        stream = [
            Tuple(rng.choice(["A1", "A2"]), (rng.randrange(3), rng.randrange(3)))
            for _ in range(200)
        ]
        evaluator = StreamingEvaluator(pcea, window=10, arena=True, audit=True)
        for tup in stream:
            evaluator.process(tup)  # audit raises on duplicates


class TestMemoryBound:
    def test_live_arena_nodes_stay_window_bounded_over_long_stream(self):
        """Live enumeration-structure storage is O(window) over a 50k stream."""
        rng = random.Random(0)
        pcea = hcq_to_pcea(star_query(2))
        window = 256
        evaluator = StreamingEvaluator(pcea, window=window, arena=True, collect_stats=False)
        peak_live = 0
        samples = []
        for index in range(50_000):
            tup = Tuple(rng.choice(["A1", "A2"]), (rng.randrange(16), rng.randrange(8)))
            evaluator.update(tup)
            if index % 500 == 0:
                live = evaluator.ds.live_node_count()
                samples.append(live)
                peak_live = max(peak_live, live)
        created = evaluator.ds.nodes_created
        assert created > 100_000, "workload must allocate heavily"
        # Retained slabs hold at most the last ~2 windows of allocations plus
        # slack for the slab granularity and the release-order skew.  The
        # observed steady state is ~8k nodes; 3 windows of this workload's
        # allocation rate (~4 nodes/tuple) plus 2 slabs is a safe ceiling that
        # still fails loudly if reclamation regresses to O(stream).
        per_position = created / 50_000
        ceiling = 3 * (window + 1) * per_position + 2 * 4096
        assert peak_live <= ceiling, (peak_live, ceiling)
        # Flat profile: the second half of the stream needs no more storage
        # than the first half already reached.
        half = len(samples) // 2
        assert max(samples[half:]) <= 2 * max(samples[:half])
        assert evaluator.ds.released_slabs > 0

    def test_idle_multi_engine_lane_still_releases(self):
        """A lane whose query stops matching must not retain expired slabs
        forever — the periodic full release pass covers idle lanes."""
        rng = random.Random(2)
        engine = MultiQueryEngine()
        engine.register(star_query(2, prefix="A"), window=32)
        engine.register(star_query(2, prefix="B"), window=32)
        # Phase 1: both queries active.
        for _ in range(2_000):
            engine.process(
                Tuple(rng.choice(["A1", "A2", "B1", "B2"]), (rng.randrange(2), 0))
            )
        lanes = list(engine._lanes.values())
        # Phase 2: only B's relations appear; A's lane goes idle.
        for _ in range(2_000):
            engine.process(Tuple(rng.choice(["B1", "B2"]), (rng.randrange(2), 0)))
        for lane in lanes:
            # Every lane (idle included) holds at most a few slabs' worth of
            # nodes — O(window), never O(stream).  Without the periodic full
            # release pass the idle lane would retain ~4.5k nodes here.
            if lane.ds.nodes_created:
                assert lane.ds.live_node_count() <= 4 * lane.ds._cap, (
                    lane,
                    lane.ds.memory_stats(),
                )

    def test_adaptive_capacity_grows_on_bursty_allocation(self):
        """Bursty streams keep the slab count O(1) per window via capacity growth."""
        ds = ArenaDataStructure(window=1000)
        initial_cap = ds.slab_capacity()
        for position in range(3_000):
            for _ in range(100):  # 100 nodes per position: a sustained burst
                ds.extend({"a"}, position, [])
            ds.release_expired(position)
        assert ds.slab_capacity() > initial_cap
        # ~8 slabs per window instead of window*rate/initial_cap ≈ 100+.
        assert ds.slab_count() <= 16
        fixed = ArenaDataStructure(window=1000, slab_capacity=64)
        for position in range(3_000):
            for _ in range(100):
                fixed.extend({"a"}, position, [])
            fixed.release_expired(position)
        assert fixed.slab_capacity() == 64  # explicit capacity never adapts
        assert fixed.slab_count() > 10 * ds.slab_count()

    def test_adaptive_capacity_shrinks_after_burst(self):
        """A lull time-seals the oversized slab and shrinks capacity back."""
        ds = ArenaDataStructure(window=500)
        for position in range(2_000):
            for _ in range(100):
                ds.extend({"a"}, position, [])
            ds.release_expired(position)
        burst_cap = ds.slab_capacity()
        assert burst_cap >= 4096
        for position in range(2_000, 8_000):  # 1 node per position
            ds.extend({"a"}, position, [])
            ds.release_expired(position)
        assert ds.slab_capacity() < burst_cap
        # Live storage tracks the window again, not the burst-era capacity.
        assert ds.live_node_count() <= 2 * (500 + 1) + 2 * burst_cap // 4

    def test_adaptive_arena_matches_fixed_capacity_outputs(self):
        """Slab sizing is invisible to semantics: same outputs, same counters."""
        rng = random.Random(21)
        adaptive = ArenaDataStructure(window=5)
        fixed = ArenaDataStructure(window=5, slab_capacity=64)
        adaptive_acc = fixed_acc = None
        position = 0
        for _ in range(400):
            position += rng.randrange(1, 3)
            burst = rng.choice([1, 1, 1, 40])  # occasional burst to force adaptation
            for _ in range(burst):
                fresh_a = adaptive.extend({"a"}, position, [])
                fresh_f = fixed.extend({"a"}, position, [])
            if adaptive_acc is None:
                adaptive_acc, fixed_acc = fresh_a, fresh_f
            else:
                adaptive_acc = adaptive.union(adaptive_acc, fresh_a)
                fixed_acc = fixed.union(fixed_acc, fresh_f)
            assert list(adaptive.enumerate(adaptive_acc, position)) == list(
                fixed.enumerate(fixed_acc, position)
            )
            adaptive.release_expired(position)
            fixed.release_expired(position)
        assert adaptive.nodes_created == fixed.nodes_created
        assert adaptive.union_copies == fixed.union_copies

    def test_explicit_capacity_rounded_and_spanning_slots(self):
        ds = ArenaDataStructure(window=10, slab_capacity=100)
        assert ds.slab_capacity() == 128  # rounded up to a power of two
        nodes = [ds.extend({"a"}, p, []) for p in range(200)]
        # Ids from different slabs still resolve correctly across slot spans.
        assert [ds.position_of(n) for n in nodes] == list(range(200))
        assert ds.slab_count() == 2

    def test_no_reclamation_without_evict(self):
        """evict=False reproduces the unbounded seed behaviour in the arena too."""
        rng = random.Random(0)
        pcea = hcq_to_pcea(star_query(2))
        evaluator = StreamingEvaluator(pcea, window=8, arena=True, evict=False)
        for _ in range(2_000):
            evaluator.update(Tuple(rng.choice(["A1", "A2"]), (rng.randrange(3), 0)))
        assert evaluator.ds.released_slabs == 0
        assert evaluator.ds.live_node_count() == evaluator.ds.nodes_created
