"""Tests for Parallelized Finite Automata (repro.automata.pfa) — Section 3."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.nfa import NFA
from repro.automata.pfa import PFA, determinize_pfa, pfa_language_sample


def example_pfa_p0() -> PFA:
    """The PFA of Example 3.1 / Figure 1 (left): a T and an S (in any order) before an R."""
    sigma = {"T", "S", "R"}
    loops = {(frozenset({s}), a, s) for s in (0, 1, 2, 3, 4) for a in sigma}
    return PFA(
        states={0, 1, 2, 3, 4},
        alphabet=sigma,
        transitions=loops
        | {
            (frozenset({0}), "T", 1),
            (frozenset({2}), "S", 3),
            (frozenset({1, 3}), "R", 4),
        },
        initial={0, 2},
        final={4},
    )


def random_pfa_strategy(max_states: int = 4) -> st.SearchStrategy[PFA]:
    alphabet = ["a", "b"]

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_states))
        states = list(range(n))
        subsets = st.frozensets(st.sampled_from(states), min_size=1, max_size=min(3, n))
        transitions = draw(
            st.sets(
                st.tuples(subsets, st.sampled_from(alphabet), st.sampled_from(states)),
                max_size=8,
            )
        )
        initial = draw(st.sets(st.sampled_from(states), min_size=1, max_size=n))
        final = draw(st.sets(st.sampled_from(states), max_size=n))
        return PFA(states, alphabet, transitions, initial, final)

    return build()


class TestPFAExample:
    def test_accepts_t_and_s_then_r(self):
        pfa = example_pfa_p0()
        assert pfa.accepts(["T", "S", "R"])
        assert pfa.accepts(["S", "T", "R"])
        assert pfa.accepts(["S", "S", "T", "R"])
        assert pfa.accepts(["T", "S", "R", "S"])  # trailing events are absorbed by the loop on 4
        assert not pfa.accepts(["T", "R"])
        assert not pfa.accepts(["R", "T", "S"])
        assert not pfa.accepts([])

    def test_run_tree_semantics_agrees_on_example(self):
        pfa = example_pfa_p0()
        for word in (["T", "S", "R"], ["S", "T", "R"], ["T", "R"], ["R"]):
            assert pfa.accepts(word) == pfa.accepts_by_run_tree(word)

    def test_run_tree_witness(self):
        pfa = example_pfa_p0()
        trees = list(pfa.run_trees(["T", "S", "R"], limit=5))
        assert trees, "an accepting run tree must exist"
        tree = trees[0]
        assert tree.state == 4
        leaves = {leaf.state for leaf in tree.leaves()}
        assert leaves <= pfa.initial

    def test_empty_word_acceptance(self):
        pfa = PFA({0}, {"a"}, set(), {0}, {0})
        assert pfa.accepts([])
        assert pfa.accepts_by_run_tree([])
        assert list(pfa.run_trees([]))[0].state == 0

    def test_size_definition(self):
        pfa = PFA(
            {0, 1, 2},
            {"a"},
            {(frozenset({0, 1}), "a", 2), (frozenset({0}), "a", 1)},
            {0},
            {2},
        )
        # |Q| + Σ (|P| + 1) = 3 + (2 + 1) + (1 + 1)
        assert pfa.size() == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            PFA({0}, {"a"}, {(frozenset({5}), "a", 0)}, {0}, {0})
        with pytest.raises(ValueError):
            PFA({0}, {"a"}, {(frozenset({0}), "z", 0)}, {0}, {0})


class TestPFAProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_pfa_strategy(), st.lists(st.sampled_from(["a", "b"]), max_size=5))
    def test_forward_simulation_equals_run_tree_semantics(self, pfa, word):
        assert pfa.accepts(word) == pfa.accepts_by_run_tree(word)

    @settings(max_examples=40, deadline=None)
    @given(random_pfa_strategy(), st.lists(st.sampled_from(["a", "b"]), max_size=5))
    def test_determinization_preserves_language(self, pfa, word):
        dfa = determinize_pfa(pfa)
        assert dfa.accepts(word) == pfa.accepts(word)

    @settings(max_examples=40, deadline=None)
    @given(random_pfa_strategy())
    def test_determinization_state_bound(self, pfa):
        """Proposition 3.2: the equivalent DFA needs at most 2^n states."""
        dfa = determinize_pfa(pfa, trim=False)
        assert len(dfa.states) <= 2 ** len(pfa.states)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_nfa_embedding_preserves_language(self, n):
        nfa = NFA(
            states=set(range(n + 1)),
            alphabet={"a", "b"},
            transitions={(i, "a", i + 1) for i in range(n)} | {(0, "b", 0)},
            initial={0},
            final={n},
        )
        pfa = PFA.from_nfa(nfa)
        for word in (["a"] * n, ["b", "a"], ["a"] * (n + 1), ["b"] * 3 + ["a"] * n):
            assert pfa.accepts(word) == nfa.accepts(word)

    def test_language_sample(self):
        pfa = example_pfa_p0()
        sample = pfa_language_sample(pfa, 3)
        assert ("T", "S", "R") in sample
        assert ("S", "T", "R") in sample
        assert ("T", "R") not in sample
