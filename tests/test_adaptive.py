"""Tests for adaptive selectivity-driven dispatch (repro.core.adaptive).

Five layers of protection:

* config/unit tests — knob validation, the ``adaptive=`` knob resolution,
  and the engine gates (no memoisation / no index ⇒ adaptation off);
* differentials — for every engine (single, general, multi, sharded
  inline) the adaptive engine's outputs *and* operation counters must be
  bit-identical to the static-dispatch oracle on the seeded scenario
  workloads (drift, burst, wildcard-adversarial, shared-star) and on
  hypothesis-generated random streams, including register/unregister
  churn while adaptation is live;
* invariants — flushes reorder derived plans only: the dispatch
  ``signature()`` (the snapshot-verification identity) never changes, and
  the scenario workload builders are seed-replayable;
* snapshot policy — learned state deterministically resets on restore;
  a mid-stream snapshot continues bit-identically whether restored into
  an adaptive or a static engine (both directions) and across the
  python/native kernel boundary;
* observability — flush activity reaches the observer's
  ``repro_dispatch_reorders_total`` / ``repro_guard_promotions_total``
  counters and the per-relation observed-selectivity gauge, and the CLI
  ``--adaptive`` / ``--no-adaptive`` modes print identical matches plus
  the ``# adaptive:`` stats line.
"""

import io
import os
import sys

import pytest
from hypothesis import given, settings

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "benchmarks"))

from repro.core.adaptive import (
    DEFAULT_ADAPTIVE_CONFIG,
    AdaptiveConfig,
    resolve_config,
)
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.kernel import native_available
from repro.cq.query import parse_query
from repro.cq.schema import Tuple
from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.multi.engine import MultiQueryEngine
from repro.obs import Observer
from repro.runtime import snapshot as snapshot_codec
from repro.shard import ShardedEngine

from helpers import SIGMA0, star_query, star_schema, streams_strategy
from workloads import (
    bursty_guard_queries,
    drifting_guard_queries,
    guarded_disjunction_workload,
    multi_star_workload,
    shared_star_queries,
    wildcard_mix_queries,
)


#: Short flush cadence so small test streams cross many adapt intervals.
def fast_config(interval=64, min_probes=16):
    return AdaptiveConfig(interval=interval, min_probes=min_probes)


QUERIES = [
    ("Q1(x, y) <- S(x, y), R(x, y)", 12),
    ("Q2(x) <- T(x)", 8),
    ("Q3(x, y) <- T(x), S(x, y)", 16),
]


def multi_engine(queries, window, adaptive, **kwargs):
    engine = MultiQueryEngine(adaptive=adaptive, **kwargs)
    for index, query in enumerate(queries):
        engine.register(query, window, f"q{index}")
    return engine


def canonical(per_position_outputs):
    """Order-insensitive form of a list of per-position output dicts."""
    return sorted(
        (position, qid, sorted(map(str, valuations)))
        for position, outputs in enumerate(per_position_outputs)
        for qid, valuations in outputs.items()
    )


# ------------------------------------------------------------- config + gates
class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0},
            {"min_probes": 0},
            {"promote_threshold": 0.0},
            {"promote_threshold": 1.5},
            {"max_promoted": -1},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kwargs)

    def test_resolve_config(self):
        assert resolve_config(False) is None
        assert resolve_config(True) is DEFAULT_ADAPTIVE_CONFIG
        explicit = fast_config()
        assert resolve_config(explicit) is explicit

    def test_disabled_engine_reports_none(self):
        pcea, _ = multi_star_workload(3, 10, selectivity=0.3, seed=1)
        assert StreamingEvaluator(pcea, window=8, adaptive=False).adaptive_info() is None
        engine = StreamingEvaluator(pcea, window=8, adaptive=True)
        info = engine.adaptive_info()
        assert info is not None and info["enabled"] is True

    def test_multi_requires_memoisation(self):
        engine = MultiQueryEngine(memoise=False, adaptive=True)
        engine.register(QUERIES[0][0], QUERIES[0][1], "q0")
        assert engine.adaptive_info() is None

    def test_general_requires_index(self):
        pcea = hcq_to_pcea(parse_query(QUERIES[0][0]))
        assert (
            GeneralStreamingEvaluator(pcea, window=8, indexed=False, adaptive=True)
            .adaptive_info() is None
        )
        assert (
            GeneralStreamingEvaluator(pcea, window=8, adaptive=True).adaptive_info()
            is not None
        )


# --------------------------------------------------------- workload builders
class TestWorkloadBuilders:
    @pytest.mark.parametrize(
        "builder",
        [
            drifting_guard_queries,
            bursty_guard_queries,
            wildcard_mix_queries,
        ],
    )
    def test_seed_replayable(self, builder):
        queries_a, stream_a = builder(6, 300, seed=5)
        queries_b, stream_b = builder(6, 300, seed=5)
        assert stream_a == stream_b
        assert len(queries_a) == len(queries_b) == 6
        assert len(stream_a) == 300
        _, other = builder(6, 300, seed=6)
        assert other != stream_a

    def test_drift_changes_hot_value_across_phases(self):
        _, stream = drifting_guard_queries(8, 800, phases=4, hot_fraction=1.0, seed=0)
        hot_per_phase = {stream[i].value(0) for i in (0, 200, 400, 600)}
        assert len(hot_per_phase) > 1

    def test_burst_reverts_to_baseline(self):
        _, stream = bursty_guard_queries(
            8, 800, burst_every=200, burst_length=50, hot_fraction=1.0, seed=0
        )
        assert stream[60].value(0) == 0  # outside the burst: baseline hot key
        assert stream[210].value(0) != 0  # inside the second burst


# ------------------------------------------------------------- differentials
class TestMultiEngineDifferential:
    WINDOW = 64

    def _run_pair(self, queries, stream, adaptive):
        engine = multi_engine(queries, self.WINDOW, adaptive, collect_stats=True)
        static = multi_engine(queries, self.WINDOW, False, collect_stats=True)
        for tup in stream:
            assert engine.process(tup) == static.process(tup)
        assert engine.stats == static.stats
        return engine

    def test_drift_promotes_and_demotes(self):
        queries, stream = drifting_guard_queries(12, 1600, seed=7)
        engine = self._run_pair(queries, stream, fast_config())
        info = engine.adaptive_info()
        assert info["flushes"] > 0
        assert info["promotions"] > 0
        assert info["demotions"] > 0
        assert info["relations"]["E"]["promoted"] >= 0

    def test_burst_scenario(self):
        queries, stream = bursty_guard_queries(
            12, 1600, burst_every=400, burst_length=100, seed=8
        )
        engine = self._run_pair(queries, stream, fast_config())
        assert engine.adaptive_info()["promotions"] > 0

    def test_wildcard_adversarial_goes_dormant(self):
        queries, stream = wildcard_mix_queries(8, 1500, seed=9)
        engine = self._run_pair(queries, stream, fast_config())
        info = engine.adaptive_info()
        # A uniform value distribution never concentrates: the guarded
        # relation must stop paying per-tuple tracking instead of promoting.
        assert info["promotions"] == 0
        assert info["dormant_relations"] >= 1
        assert info["tracked_relations"] >= info["dormant_relations"]

    def test_shared_star_scenario(self):
        queries, stream = shared_star_queries(10, 1200, seed=10)
        engine = self._run_pair(queries, stream, fast_config())
        assert engine.adaptive_info()["flushes"] > 0

    def test_default_knob_is_enabled(self):
        queries, stream = drifting_guard_queries(6, 600, seed=12)
        engine = self._run_pair(queries, stream, True)
        info = engine.adaptive_info()
        assert info["enabled"] is True
        assert info["interval"] == DEFAULT_ADAPTIVE_CONFIG.interval

    def test_churn_during_live_adaptation(self):
        queries, stream = drifting_guard_queries(8, 1200, seed=21)
        engine = multi_engine(queries, self.WINDOW, fast_config(), collect_stats=True)
        static = multi_engine(queries, self.WINDOW, False, collect_stats=True)
        for tup in stream[:400]:
            assert engine.process(tup) == static.process(tup)
        # Unregister a query whose guard the adapter may have promoted, then
        # register a replacement mid-stream — on both engines identically.
        engine.unregister(engine.handles()[2])
        static.unregister(static.handles()[2])
        for tup in stream[400:800]:
            assert engine.process(tup) == static.process(tup)
        engine.register(queries[2], self.WINDOW, "q2_re")
        static.register(queries[2], self.WINDOW, "q2_re")
        for tup in stream[800:]:
            assert engine.process(tup) == static.process(tup)
        assert engine.stats == static.stats
        assert engine.adaptive_info()["flushes"] > 0

    @settings(max_examples=25, deadline=None)
    @given(stream=streams_strategy(SIGMA0, max_length=30, domain=3))
    def test_hypothesis_streams(self, stream):
        adaptive = multi_engine(
            [parse_query(q) for q, _ in QUERIES],
            16,
            fast_config(interval=8, min_probes=4),
            collect_stats=True,
        )
        static = multi_engine(
            [parse_query(q) for q, _ in QUERIES], 16, False, collect_stats=True
        )
        for tup in stream:
            assert adaptive.process(tup) == static.process(tup)
        assert adaptive.stats == static.stats


class TestSingleEngineDifferential:
    def _run_pair(self, pcea, stream, window=64, **kwargs):
        engine = StreamingEvaluator(
            pcea, window=window, adaptive=fast_config(), collect_stats=True, **kwargs
        )
        static = StreamingEvaluator(
            pcea, window=window, adaptive=False, collect_stats=True, **kwargs
        )
        for tup in stream:
            assert engine.process(tup) == static.process(tup)
        assert engine.stats == static.stats
        return engine

    def test_multi_star_tracked(self):
        pcea, stream = multi_star_workload(3, 1500, selectivity=0.3, seed=4)
        engine = self._run_pair(pcea, stream)
        info = engine.adaptive_info()
        assert info["tracked_relations"] > 0
        assert info["flushes"] > 0

    def test_pure_guarded_disjunction_untracked(self):
        # The static constant-guard buckets already dispatch this shape
        # optimally: adaptation must decline to track it (zero overhead).
        pcea, stream = guarded_disjunction_workload(16, 800, seed=3)
        engine = self._run_pair(pcea, stream, window=128)
        # Nothing trackable ⇒ the engine keeps no adaptive state at all.
        assert engine.adaptive_info() is None

    @settings(max_examples=25, deadline=None)
    @given(stream=streams_strategy(star_schema(2), max_length=24, domain=2))
    def test_hypothesis_streams(self, stream):
        pcea = hcq_to_pcea(star_query(2))
        engine = StreamingEvaluator(
            pcea, window=8, adaptive=fast_config(interval=8, min_probes=4),
            collect_stats=True,
        )
        static = StreamingEvaluator(pcea, window=8, adaptive=False, collect_stats=True)
        for tup in stream:
            assert engine.process(tup) == static.process(tup)
        assert engine.stats == static.stats


class TestGeneralEngineDifferential:
    def _run_pair(self, pcea, stream, window=64):
        engine = GeneralStreamingEvaluator(
            pcea, window=window, adaptive=fast_config(), collect_stats=True
        )
        static = GeneralStreamingEvaluator(
            pcea, window=window, adaptive=False, collect_stats=True
        )
        for tup in stream:
            assert engine.process(tup) == static.process(tup)
        assert engine.stats == static.stats
        return engine

    def test_multi_star_workload(self):
        pcea, stream = multi_star_workload(3, 1200, selectivity=0.3, seed=14)
        engine = self._run_pair(pcea, stream)
        assert engine.adaptive_info()["flushes"] > 0

    def test_guarded_disjunction(self):
        pcea, stream = guarded_disjunction_workload(12, 800, seed=15)
        self._run_pair(pcea, stream, window=128)

    @settings(max_examples=25, deadline=None)
    @given(stream=streams_strategy(SIGMA0, max_length=24, domain=3))
    def test_hypothesis_streams(self, stream):
        pcea = hcq_to_pcea(parse_query(QUERIES[0][0]))
        engine = GeneralStreamingEvaluator(
            pcea, window=8, adaptive=fast_config(interval=8, min_probes=4),
            collect_stats=True,
        )
        static = GeneralStreamingEvaluator(
            pcea, window=8, adaptive=False, collect_stats=True
        )
        for tup in stream:
            assert engine.process(tup) == static.process(tup)
        assert engine.stats == static.stats


class TestShardedDifferential:
    def test_inline_shards_match_static_reference(self):
        specs = [(parse_query(q), w) for q, w in QUERIES]
        from repro.streams.generators import random_stream

        stream = random_stream(SIGMA0, length=400, domain_size=3, seed=19).materialise()
        reference = MultiQueryEngine(adaptive=False)
        for query, window in specs:
            reference.register(query, window)
        want = [reference.process(tup) for tup in stream]
        with ShardedEngine(
            2, start_method="inline", adaptive=fast_config(interval=32, min_probes=8)
        ) as sharded:
            sharded.register_many(specs)
            got = sharded.process_many(stream)
            info = sharded.adaptive_info()
        assert canonical(got) == canonical(want)
        assert info is not None and info["enabled"] is True
        assert info["tracked_relations"] > 0

    def test_inline_adaptive_info_disabled(self):
        with ShardedEngine(2, start_method="inline", adaptive=False) as sharded:
            sharded.register_many([(parse_query(QUERIES[0][0]), 8)])
            sharded.process(Tuple("T", (1,)))
            assert sharded.adaptive_info() is None


# ------------------------------------------------------------------ invariants
class TestSignatureStability:
    def test_multi_signature_unchanged_by_flushes(self):
        queries, stream = drifting_guard_queries(8, 1200, seed=23)
        engine = multi_engine(queries, 64, fast_config())
        before = snapshot_codec.dumps(engine._merged.signature())
        for tup in stream:
            engine.process(tup)
        info = engine.adaptive_info()
        assert info["flushes"] > 0 and info["promotions"] > 0
        assert snapshot_codec.dumps(engine._merged.signature()) == before

    def test_single_signature_unchanged_by_flushes(self):
        pcea, stream = multi_star_workload(3, 800, selectivity=0.3, seed=24)
        engine = StreamingEvaluator(pcea, window=64, adaptive=fast_config())
        before = snapshot_codec.dumps(engine._dispatch.signature())
        for tup in stream:
            engine.process(tup)
        assert engine.adaptive_info()["flushes"] > 0
        assert snapshot_codec.dumps(engine._dispatch.signature()) == before


# ------------------------------------------------------------ snapshot policy
class TestSnapshotPolicy:
    """Learned state resets deterministically; snapshots stay interchangeable."""

    def _multi(self, queries, adaptive):
        return multi_engine(queries, 64, adaptive, collect_stats=True)

    @pytest.mark.parametrize(
        "source_adaptive,target_adaptive",
        [(True, True), (True, False), (False, True)],
        ids=["adaptive-to-adaptive", "adaptive-to-static", "static-to-adaptive"],
    )
    def test_multi_restore_continues_bit_identically(self, source_adaptive, target_adaptive):
        config = fast_config()
        queries, stream = drifting_guard_queries(8, 1200, seed=27)
        original = self._multi(queries, config if source_adaptive else False)
        for tup in stream[:700]:
            original.process(tup)
        snap = snapshot_codec.loads(snapshot_codec.dumps(original.snapshot()))
        restored = self._multi(queries, config if target_adaptive else False)
        restored.restore(snap)
        if target_adaptive:
            # The restore policy: all learned state dropped, counters zeroed.
            info = restored.adaptive_info()
            assert info["flushes"] == 0 and info["promotions"] == 0
        assert [original.process(t) for t in stream[700:]] == [
            restored.process(t) for t in stream[700:]
        ]
        assert original.stats == restored.stats
        assert original.snapshot() == restored.snapshot()

    def test_single_restore_resets_learning(self):
        config = fast_config()
        pcea, stream = multi_star_workload(3, 1200, selectivity=0.3, seed=28)
        original = StreamingEvaluator(pcea, window=64, adaptive=config)
        for tup in stream[:700]:
            original.process(tup)
        assert original.adaptive_info()["flushes"] > 0
        restored = StreamingEvaluator(pcea, window=64, adaptive=config)
        restored.restore(snapshot_codec.loads(snapshot_codec.dumps(original.snapshot())))
        assert restored.adaptive_info()["flushes"] == 0
        assert [original.process(t) for t in stream[700:]] == [
            restored.process(t) for t in stream[700:]
        ]

    def test_general_restore_interchangeable(self):
        pcea, stream = multi_star_workload(2, 800, selectivity=0.3, seed=29)
        original = GeneralStreamingEvaluator(pcea, window=64, adaptive=fast_config())
        for tup in stream[:400]:
            original.process(tup)
        restored = GeneralStreamingEvaluator(pcea, window=64, adaptive=False)
        restored.restore(snapshot_codec.loads(snapshot_codec.dumps(original.snapshot())))
        assert [original.process(t) for t in stream[400:]] == [
            restored.process(t) for t in stream[400:]
        ]

    @pytest.mark.skipif(not native_available(), reason="native kernel extension not built")
    @pytest.mark.parametrize("source,target", [("python", "native"), ("native", "python")])
    def test_cross_kernel_restore_with_adaptation(self, source, target):
        config = fast_config()
        pcea, stream = multi_star_workload(3, 1000, selectivity=0.3, seed=31)
        original = StreamingEvaluator(pcea, window=64, kernel=source, adaptive=config)
        for tup in stream[:500]:
            original.process(tup)
        restored = StreamingEvaluator(pcea, window=64, kernel=target, adaptive=config)
        restored.restore(snapshot_codec.loads(snapshot_codec.dumps(original.snapshot())))
        assert [original.process(t) for t in stream[500:]] == [
            restored.process(t) for t in stream[500:]
        ]
        assert original.snapshot() == restored.snapshot()


# -------------------------------------------------------------- observability
class TestObservability:
    def test_flush_activity_reaches_observer(self, tmp_path):
        queries, stream = drifting_guard_queries(8, 1200, seed=33)
        engine = multi_engine(queries, 64, fast_config())
        observer = Observer(sample_every=4)
        engine.attach_observer(observer)
        for tup in stream:
            engine.process(tup)
        info = engine.adaptive_info()
        assert info["promotions"] > 0
        collected = observer.collect()
        assert collected["repro_guard_promotions_total"] == info["promotions"]
        assert collected["repro_dispatch_reorders_total"] == info["reorders"]
        observer.observe_engine(engine)
        collected = observer.collect()
        assert collected["repro_adaptive_flushes"] == info["flushes"]
        assert collected["repro_adaptive_promotions"] == info["promotions"]
        assert 'repro_relation_observed_selectivity{relation="E"}' in collected
        path = str(tmp_path / "metrics.prom")
        observer.export_metrics(path)
        text = open(path).read()
        assert "repro_dispatch_reorders_total" in text
        assert "repro_guard_promotions_total" in text
        assert "repro_relation_observed_selectivity" in text

    def test_quiescent_flushes_do_not_touch_counters(self):
        queries, stream = wildcard_mix_queries(4, 600, seed=34)
        engine = multi_engine(queries, 64, fast_config())
        observer = Observer(sample_every=4)
        engine.attach_observer(observer)
        for tup in stream:
            engine.process(tup)
        collected = observer.collect()
        assert collected.get("repro_guard_promotions_total", 0) == 0


# ------------------------------------------------------------------------- CLI
EVENTS_CSV = """\
S,2,11
T,2
R,1,10
S,2,11
T,1
R,2,11
"""

CLI_QUERY = "Q(x, y) <- T(x), S(x, y), R(x, y)"


class TestCli:
    def _events(self):
        from repro.cli import read_events

        return list(read_events(EVENTS_CSV.splitlines()))

    def _run_single(self, argv):
        from repro.cli import build_parser, run

        args = build_parser().parse_args(argv)
        output = io.StringIO()
        code = run(args, self._events(), output)
        return code, output.getvalue()

    def _run_multi(self, argv):
        from repro.cli import build_multi_parser, run_multi

        args = build_multi_parser().parse_args(argv)
        output = io.StringIO()
        code = run_multi(args, self._events(), output)
        return code, output.getvalue()

    @staticmethod
    def _matches(output):
        return [line for line in output.splitlines() if not line.startswith("#")]

    def test_flags_are_mutually_exclusive(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["--query", CLI_QUERY, "--adaptive", "--no-adaptive"]
            )

    @pytest.mark.parametrize("extra", [[], ["--general"]])
    def test_single_modes_match_and_report(self, extra):
        base = ["--query", CLI_QUERY, "--window", "100", "--stats"] + extra
        code_on, out_on = self._run_single(base + ["--adaptive"])
        code_off, out_off = self._run_single(base + ["--no-adaptive"])
        assert code_on == code_off == 0
        assert self._matches(out_on) == self._matches(out_off)
        assert "# adaptive: enabled=yes" in out_on
        assert "# adaptive: enabled=no" in out_off

    def test_multi_mode_matches_and_reports(self):
        base = [
            "--query", CLI_QUERY,
            "--query", "Q2(x, y) <- T(x), S(x, y)",
            "--window", "100", "--stats",
        ]
        code_on, out_on = self._run_multi(base + ["--adaptive"])
        code_off, out_off = self._run_multi(base + ["--no-adaptive"])
        assert code_on == code_off == 0
        assert self._matches(out_on) == self._matches(out_off)
        assert "# adaptive: enabled=yes" in out_on
        assert "# adaptive: enabled=no" in out_off

    def test_default_is_adaptive(self):
        code, output = self._run_single(
            ["--query", CLI_QUERY, "--window", "100", "--stats"]
        )
        assert code == 0
        assert "# adaptive: enabled=yes" in output
