"""Tests for compiling CER patterns to PCEA (repro.engine.compiler)."""

import pytest

from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import check_unambiguous_on_stream
from repro.cq.schema import Tuple
from repro.cq.stream_semantics import cq_stream_new_outputs
from repro.engine.compiler import PatternCompilationError, compile_pattern
from repro.engine.dsl import atom, conjunction, disjunction, sequence
from repro.valuation import Valuation

from helpers import QUERY_Q0, STREAM_S0


class TestCompileAtomsAndConjunctions:
    def test_single_atom_pattern(self):
        pcea = compile_pattern(atom("T", "x"))
        evaluator = StreamingEvaluator(pcea, window=10)
        stream = [Tuple("S", (1, 2)), Tuple("T", (5,))]
        assert evaluator.process(stream[0]) == []
        assert evaluator.process(stream[1]) == [Valuation({0: {1}})]

    def test_conjunction_equals_hcq_translation(self):
        pattern = conjunction(atom("T", "x"), atom("S", "x", "y"), atom("R", "x", "y"))
        compiled = compile_pattern(pattern)
        reference = hcq_to_pcea(QUERY_Q0)
        for position in range(len(STREAM_S0)):
            assert compiled.output_at(STREAM_S0, position) == reference.output_at(
                STREAM_S0, position
            )

    def test_conjunction_requires_hierarchical_structure(self):
        pattern = conjunction(atom("A", "x"), atom("B", "y"), atom("C", "x", "y"))
        with pytest.raises(PatternCompilationError):
            compile_pattern(pattern)

    def test_filters_restrict_matches(self):
        pattern = conjunction(
            atom("Buy", "s", "p", filters=[("p", ">", 100)]),
            atom("Sell", "s", "q"),
        )
        pcea = compile_pattern(pattern)
        evaluator = StreamingEvaluator(pcea, window=10)
        evaluator.process(Tuple("Buy", (1, 50)))
        assert evaluator.process(Tuple("Sell", (1, 70))) == []
        evaluator.process(Tuple("Buy", (1, 150)))
        outputs = evaluator.process(Tuple("Sell", (1, 70)))
        assert outputs == [Valuation({0: {2}, 1: {3}})]

    def test_repeated_variable_filter(self):
        pcea = compile_pattern(atom("E", "x", "x"))
        evaluator = StreamingEvaluator(pcea, window=10)
        assert evaluator.process(Tuple("E", (1, 2))) == []
        assert evaluator.process(Tuple("E", (3, 3))) == [Valuation({0: {1}})]

    def test_compilation_error_on_unknown_filter_variable(self):
        with pytest.raises(PatternCompilationError):
            compile_pattern(atom("Buy", "s", filters=[("nope", ">", 1)]))

    def test_conjunction_matches_cq_ground_truth_on_random_streams(self):
        """Compiled conjunctions agree with the CQ stream semantics position by position."""
        import random

        from repro.cq.query import ConjunctiveQuery

        rng = random.Random(7)
        pattern = conjunction(atom("T", "x"), atom("S", "x", "y"), atom("R", "x", "y"))
        compiled = compile_pattern(pattern)
        for _ in range(5):
            stream = []
            for _ in range(8):
                relation = rng.choice(["T", "S", "R"])
                arity = 1 if relation == "T" else 2
                stream.append(Tuple(relation, tuple(rng.randrange(2) for _ in range(arity))))
            evaluator = StreamingEvaluator(compiled, window=len(stream) + 1)
            for position, tup in enumerate(stream):
                expected = cq_stream_new_outputs(QUERY_Q0, stream, position)
                assert set(evaluator.process(tup)) == expected


class TestCompileSequence:
    def test_sequence_enforces_order(self):
        pattern = sequence(atom("T", "x"), atom("S", "x", "y"), atom("R", "x", "y"))
        pcea = compile_pattern(pattern)
        evaluator = StreamingEvaluator(pcea, window=20)
        results = evaluator.run(STREAM_S0)
        # Like the CCEA C0 of Example 2.1: only the ordered match at position 5.
        assert results[5] == [Valuation({0: {1}, 1: {3}, 2: {5}})]
        assert all(not outs for pos, outs in results.items() if pos != 5)

    def test_sequence_correlates_consecutive_components(self):
        pattern = sequence(atom("A", "x"), atom("B", "x"))
        pcea = compile_pattern(pattern)
        evaluator = StreamingEvaluator(pcea, window=20)
        evaluator.process(Tuple("A", (1,)))
        assert evaluator.process(Tuple("B", (2,))) == []
        assert evaluator.process(Tuple("B", (1,))) == [Valuation({0: {0}, 1: {2}})]

    def test_conjunction_then_atom_is_example_p0(self):
        """sequence(conjunction(T, S), R) is the automaton P0 of Example 3.3."""
        pattern = sequence(
            conjunction(atom("T", "x"), atom("S", "x", "y")),
            atom("R", "x", "y"),
        )
        pcea = compile_pattern(pattern)
        evaluator = StreamingEvaluator(pcea, window=20)
        results = evaluator.run(STREAM_S0)
        # Correlation with the last tuple of the conjunction is on x only (the
        # variable shared by T and S), so both T/S orders are found at position 5.
        assert len(results[5]) >= 2
        labels = {frozenset(v.labels()) for v in results[5]}
        assert labels == {frozenset({0, 1, 2})}

    def test_sequence_rejects_non_atom_later_components(self):
        pattern = sequence(atom("A", "x"), conjunction(atom("B", "x"), atom("C", "x")))
        with pytest.raises(PatternCompilationError):
            compile_pattern(pattern)

    def test_sequence_without_shared_variables_uses_true_equality(self):
        pattern = sequence(atom("A", "x"), atom("B", "y"))
        pcea = compile_pattern(pattern)
        evaluator = StreamingEvaluator(pcea, window=20)
        evaluator.process(Tuple("A", (1,)))
        assert evaluator.process(Tuple("B", (9,))) == [Valuation({0: {0}, 1: {1}})]


class TestCompileDisjunction:
    def test_disjunction_of_atoms(self):
        pattern = disjunction(atom("A", "x"), atom("B", "x"))
        pcea = compile_pattern(pattern)
        evaluator = StreamingEvaluator(pcea, window=10)
        assert evaluator.process(Tuple("A", (1,))) == [Valuation({0: {0}})]
        assert evaluator.process(Tuple("B", (1,))) == [Valuation({1: {1}})]
        assert evaluator.process(Tuple("C", (1,))) == []

    def test_disjunction_of_sequences(self):
        pattern = disjunction(
            sequence(atom("A", "x"), atom("B", "x")),
            sequence(atom("C", "x"), atom("B", "x")),
        )
        pcea = compile_pattern(pattern)
        evaluator = StreamingEvaluator(pcea, window=10)
        evaluator.process(Tuple("A", (1,)))
        evaluator.process(Tuple("C", (1,)))
        outputs = set(evaluator.process(Tuple("B", (1,))))
        assert outputs == {
            Valuation({0: {0}, 1: {2}}),
            Valuation({2: {1}, 3: {2}}),
        }

    def test_compiled_patterns_stay_unambiguous_on_streams(self):
        pattern = sequence(conjunction(atom("T", "x"), atom("S", "x", "y")), atom("R", "x", "y"))
        pcea = compile_pattern(pattern)
        assert check_unambiguous_on_stream(pcea, STREAM_S0) == []

    def test_empty_pattern_rejected(self):
        with pytest.raises(PatternCompilationError):
            compile_pattern(conjunction(atom("A", "x")).__class__(parts=()))
