"""Unit tests for relational databases with duplicates (repro.cq.database)."""

import pytest

from repro.cq.bag import Bag
from repro.cq.database import Database, database_from_rows
from repro.cq.schema import Schema, SchemaError, Tuple

from helpers import SIGMA0, STREAM_S0


def example_d0() -> Database:
    """The database ``D0`` of Section 4 (the first six tuples of ``S0``)."""
    return Database(SIGMA0, {i: STREAM_S0[i] for i in range(6)})


class TestDatabase:
    def test_len_and_iteration(self):
        db = example_d0()
        assert len(db) == 6
        assert sorted(t.relation for t in db) == ["R", "R", "S", "S", "T", "T"]

    def test_identifiers_are_positions(self):
        db = example_d0()
        assert db.identifiers() == set(range(6))
        assert db[1] == Tuple("T", (2,))

    def test_relation_projection_keeps_identifiers(self):
        db = example_d0()
        t_bag = db.relation("T")
        assert t_bag == Bag([Tuple("T", (2,)), Tuple("T", (1,))])
        assert t_bag.identifiers() == {1, 4}

    def test_relation_projection_of_duplicates(self):
        db = example_d0()
        s_bag = db.relation("S")
        assert s_bag.multiplicity(Tuple("S", (2, 11))) == 2

    def test_relation_unknown_name_raises(self):
        db = example_d0()
        with pytest.raises(SchemaError):
            db.relation("X")

    def test_relation_known_but_empty(self):
        db = Database(SIGMA0, [Tuple("T", (1,))])
        assert len(db.relation("R")) == 0

    def test_multiplicity(self):
        db = example_d0()
        assert db.multiplicity(Tuple("S", (2, 11))) == 2
        assert db.multiplicity(Tuple("S", (9, 9))) == 0

    def test_schema_validation_on_construction(self):
        with pytest.raises(SchemaError):
            Database(SIGMA0, [Tuple("T", (1, 2))])

    def test_equality(self):
        assert example_d0() == example_d0()
        assert example_d0() != Database(SIGMA0, [Tuple("T", (1,))])

    def test_insert_returns_new_database(self):
        db = Database(SIGMA0, [Tuple("T", (1,))])
        extended = db.insert(Tuple("T", (2,)))
        assert len(db) == 1
        assert len(extended) == 2

    def test_insert_with_explicit_identifier(self):
        db = Database(SIGMA0, [Tuple("T", (1,))])
        extended = db.insert(Tuple("T", (2,)), identifier="custom")
        assert extended["custom"] == Tuple("T", (2,))
        with pytest.raises(ValueError):
            extended.insert(Tuple("T", (3,)), identifier="custom")

    def test_index_groups_by_key(self):
        db = example_d0()
        index = db.index("S", (0,))
        assert set(index) == {(2,), (4,)} or set(index) == {(2,)}  # S(4,13) is at position 6 (not in D0)
        assert {identifier for identifier, _ in index[(2,)]} == {0, 3}

    def test_index_is_cached(self):
        db = example_d0()
        assert db.index("R", (0, 1)) is db.index("R", (0, 1))

    def test_database_from_rows(self):
        db = database_from_rows(SIGMA0, [("T", (1,)), ("S", (1, 2))])
        assert len(db) == 2
        assert db.multiplicity(Tuple("T", (1,))) == 1
