"""Tests for the cross-layer snapshot/restore protocol and columnar layout.

Four layers of protection:

* codec unit tests — the tagged-JSON serialisation must round-trip every
  value kind a snapshot tree can contain (tuples, frozensets, events, atoms,
  dicts with non-string keys);
* snapshot→restore→continue differentials — for each of the three engines,
  a mid-stream snapshot restored into a freshly constructed engine must
  continue with outputs *bit-identical* to the uninterrupted run, including
  restore-into-a-fresh-process simulated through pickle and tagged-JSON
  roundtrips (no shared objects survive either) and multi-engine handle-id
  continuity across pre-checkpoint churn;
* verification — restoring into a mismatched engine (different query,
  window, evict setting, engine kind, or the object-graph structure) must be
  rejected before any state is touched;
* structural identity of the layouts — the columnar (packed-record) and
  list-backed arenas fed the same operations must be *snapshot-equal*, under
  hypothesis streams and under long streams with mid-stream expiry, which is
  the invariant that makes the layouts interchangeable oracles.
"""

import pickle
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.arena import ArenaDataStructure
from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.cq.query import Atom, Variable, parse_query
from repro.cq.schema import Tuple
from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.multi.engine import MultiQueryEngine
from repro.runtime import SnapshotError
from repro.runtime import snapshot as snapshot_codec
from repro.streams.generators import random_stream

from helpers import SIGMA0, star_query, star_schema, streams_strategy


QUERY = "Q(x, y) <- T(x), S(x, y), R(x, y)"


def sigma0_stream(length, seed, domain_size=3):
    return random_stream(SIGMA0, length=length, domain_size=domain_size, seed=seed).materialise()


def roundtrip(snapshot, how):
    """A fresh-process simulation: no object is shared with the original."""
    if how == "pickle":
        return pickle.loads(pickle.dumps(snapshot))
    if how == "json":
        return snapshot_codec.loads(snapshot_codec.dumps(snapshot))
    return snapshot


class TestCodec:
    CASES = [
        {"a": 1, "b": [1, 2.5, None, True, "x"]},
        (1, ("nested", (2,)), frozenset({1, 2})),
        {("tuple", "key"): "value", 7: [("x",)]},
        {0: [1, 2], 1: []},  # int-keyed dict (expiry buckets)
        Tuple("R", (1, "a")),
        [Tuple("S", (2,)), (Tuple("T", ()), 5)],
        frozenset({Atom("R", (Variable("x"), 3))}),
        {"__repro__": "user data that looks like a tag"},
        {"hash": [((0, 1, (2, "k")), (17, 4))]},
    ]

    @pytest.mark.parametrize("value", CASES, ids=range(len(CASES)))
    def test_roundtrip_equality(self, value):
        assert snapshot_codec.loads(snapshot_codec.dumps(value)) == value

    def test_types_survive_exactly(self):
        decoded = snapshot_codec.loads(snapshot_codec.dumps({"t": (1, 2), "l": [1, 2]}))
        assert isinstance(decoded["t"], tuple) and isinstance(decoded["l"], list)
        event = snapshot_codec.loads(snapshot_codec.dumps(Tuple("R", (1,))))
        assert isinstance(event, Tuple) and isinstance(event.values, tuple)

    def test_unserialisable_rejected(self):
        with pytest.raises(SnapshotError):
            snapshot_codec.dumps({"f": lambda: None})

    def test_save_load_file(self, tmp_path):
        path = str(tmp_path / "snap.json")
        value = {"buckets": {3: [0, (1, "k"), 5]}}
        snapshot_codec.save(path, value)
        assert snapshot_codec.load(path) == value


class TestSingleEngineSnapshot:
    WINDOW = 9

    def _engine(self, **kwargs):
        return StreamingEvaluator(hcq_to_pcea(parse_query(QUERY)), window=self.WINDOW, **kwargs)

    @pytest.mark.parametrize("how", ["native", "pickle", "json"])
    def test_restore_continues_bit_identically(self, how):
        stream = sigma0_stream(300, seed=3)
        original = self._engine()
        for tup in stream[:150]:
            original.process(tup)
        snap = roundtrip(original.snapshot(), how)
        restored = self._engine()
        restored.restore(snap)
        assert restored.position == original.position
        assert restored.hash_table_size() == original.hash_table_size()
        tail_original = [original.process(tup) for tup in stream[150:]]
        tail_restored = [restored.process(tup) for tup in stream[150:]]
        assert tail_original == tail_restored
        # The two engines remain structurally identical after continuing.
        assert original.snapshot() == restored.snapshot()

    def test_snapshot_counters_and_eviction_state_survive(self):
        stream = sigma0_stream(200, seed=5)
        original = self._engine(collect_stats=True)
        for tup in stream:
            original.process(tup)
        restored = self._engine(collect_stats=True)
        restored.restore(roundtrip(original.snapshot(), "json"))
        assert restored.evicted == original.evicted
        assert restored.stats == original.stats
        assert restored.memory_info() == original.memory_info()

    def test_restore_rejects_mismatches(self):
        original = self._engine()
        for tup in sigma0_stream(50, seed=1):
            original.process(tup)
        snap = original.snapshot()
        with pytest.raises(SnapshotError):
            StreamingEvaluator(
                hcq_to_pcea(parse_query(QUERY)), window=self.WINDOW + 1
            ).restore(snap)
        with pytest.raises(SnapshotError):
            StreamingEvaluator(
                hcq_to_pcea(parse_query("Q2(x, y) <- S(x, y), R(x, y)")),
                window=self.WINDOW,
            ).restore(snap)
        with pytest.raises(SnapshotError):
            self._engine(evict=False).restore(snap)
        with pytest.raises(SnapshotError):
            general = GeneralStreamingEvaluator(
                hcq_to_pcea(parse_query(QUERY)), window=self.WINDOW
            )
            general.restore(snap)  # engine-kind mismatch

    def test_object_graph_engine_cannot_snapshot(self):
        engine = self._engine(arena=False)
        with pytest.raises(ValueError):
            engine.snapshot()

    def test_snapshot_is_independent_of_later_processing(self):
        stream = sigma0_stream(120, seed=8)
        original = self._engine()
        for tup in stream[:60]:
            original.process(tup)
        snap = roundtrip(original.snapshot(), "json")
        reference = snapshot_codec.dumps(snap)
        for tup in stream[60:]:
            original.process(tup)
        assert snapshot_codec.dumps(snap) == reference


class TestGeneralEngineSnapshot:
    WINDOW = 8

    def _engine(self, **kwargs):
        return GeneralStreamingEvaluator(
            hcq_to_pcea(parse_query(QUERY)), window=self.WINDOW, **kwargs
        )

    @pytest.mark.parametrize("how", ["pickle", "json"])
    def test_restore_continues_bit_identically(self, how):
        stream = sigma0_stream(260, seed=11)
        original = self._engine()
        for tup in stream[:130]:
            original.process(tup)
        restored = self._engine()
        restored.restore(roundtrip(original.snapshot(), how))
        assert [original.process(t) for t in stream[130:]] == [
            restored.process(t) for t in stream[130:]
        ]
        assert original.snapshot() == restored.snapshot()
        assert original.nodes_scanned == restored.nodes_scanned

    def test_ring_state_survives_restore(self):
        stream = sigma0_stream(150, seed=13)
        original = self._engine(ring_capacity=4)  # force ring growth
        for tup in stream:
            original.process(tup)
        restored = self._engine(ring_capacity=4)
        restored.restore(roundtrip(original.snapshot(), "json"))
        assert {
            state: ring.live() for state, ring in original._rings.items()
        } == {state: ring.live() for state, ring in restored._rings.items()}


class TestMultiEngineSnapshot:
    SPECS = [
        ("Q1(x, y) <- S(x, y), R(x, y)", 7),
        ("Q2(x) <- T(x)", 4),
        ("Q3(x, y) <- T(x), S(x, y)", 11),
    ]

    @pytest.mark.parametrize("how", ["pickle", "json"])
    def test_restore_with_churn_continues_bit_identically(self, how):
        stream = sigma0_stream(300, seed=17)
        original = MultiQueryEngine()
        handles = [original.register(q, window=w) for q, w in self.SPECS]
        for tup in stream[:80]:
            original.process(tup)
        original.unregister(handles[1])  # leaves an id gap before checkpoint
        for tup in stream[80:150]:
            original.process(tup)
        snap = roundtrip(original.snapshot(), how)

        restored = MultiQueryEngine()
        # Re-register the *surviving* queries in registration order.
        restored.register(self.SPECS[0][0], window=self.SPECS[0][1])
        restored.register(self.SPECS[2][0], window=self.SPECS[2][1])
        restored.restore(snap)
        # Handle ids (the output routing keys) adopt the snapshot's ids.
        assert [h.id for h in restored.handles()] == [handles[0].id, handles[2].id]
        assert [original.process(t) for t in stream[150:]] == [
            restored.process(t) for t in stream[150:]
        ]
        assert original.snapshot() == restored.snapshot()
        # Future registrations continue the snapshotted id sequence.
        new_a = original.register("Q4(x) <- T(x)", window=3)
        new_b = restored.register("Q4(x) <- T(x)", window=3)
        assert new_a.id == new_b.id

    def test_restore_rejects_wrong_queries(self):
        original = MultiQueryEngine()
        for q, w in self.SPECS:
            original.register(q, window=w)
        for tup in sigma0_stream(40, seed=2):
            original.process(tup)
        snap = original.snapshot()
        fresh = MultiQueryEngine()
        fresh.register(self.SPECS[0][0], window=self.SPECS[0][1])
        with pytest.raises(SnapshotError):
            fresh.restore(snap)  # wrong query count
        other = MultiQueryEngine()
        other.register(self.SPECS[0][0], window=self.SPECS[0][1])
        other.register(self.SPECS[1][0], window=self.SPECS[1][1])
        other.register("Qx(x, y) <- S(x, y)", window=self.SPECS[2][1])
        with pytest.raises(SnapshotError):
            other.restore(snap)  # structurally different query set


class TestColumnarListStructuralIdentity:
    """The two arena layouts must be indistinguishable through snapshots."""

    def _pair(self, window):
        pcea = hcq_to_pcea(star_query(2))
        return (
            StreamingEvaluator(pcea, window=window, columnar=True),
            StreamingEvaluator(pcea, window=window, columnar=False),
        )

    @settings(max_examples=40, deadline=None)
    @given(streams_strategy(star_schema(2), max_length=24, domain=2), st.integers(0, 6))
    def test_snapshots_identical_under_hypothesis_streams(self, stream, window):
        columnar, listy = self._pair(window)
        for tup in stream:
            assert columnar.process(tup) == listy.process(tup)
        assert columnar.ds.snapshot() == listy.ds.snapshot()
        assert columnar.snapshot()["lane"] == listy.snapshot()["lane"]

    def test_snapshots_identical_with_mid_stream_expiry(self):
        rng = random.Random(23)
        columnar, listy = self._pair(window=12)
        for position in range(2_000):
            relation = rng.choice(["A1", "A2"])
            tup = Tuple(relation, (rng.randrange(2), rng.randrange(2)))
            assert columnar.process(tup) == listy.process(tup), position
        snap_columnar = columnar.ds.snapshot()
        snap_listy = listy.ds.snapshot()
        assert snap_columnar == snap_listy
        assert columnar.ds.released_slabs == listy.ds.released_slabs > 0

    @pytest.mark.parametrize("source,target", [(True, False), (False, True)])
    def test_cross_layout_restore(self, source, target):
        """A snapshot from either layout restores into either layout."""
        stream = sigma0_stream(200, seed=29)
        pcea = hcq_to_pcea(parse_query(QUERY))
        original = StreamingEvaluator(pcea, window=10, columnar=source)
        for tup in stream[:100]:
            original.process(tup)
        restored = StreamingEvaluator(pcea, window=10, columnar=target)
        restored.restore(roundtrip(original.snapshot(), "json"))
        assert [original.process(t) for t in stream[100:]] == [
            restored.process(t) for t in stream[100:]
        ]

    def test_arena_restore_rejects_wrong_window(self):
        ds = ArenaDataStructure(5)
        ds.extend({"a"}, 0, [])
        snap = ds.snapshot()
        with pytest.raises(ValueError):
            ArenaDataStructure(6).restore(snap)

    def test_resident_bytes_smaller_columnar(self):
        rng = random.Random(31)
        columnar, listy = self._pair(window=64)
        for _ in range(3_000):
            tup = Tuple(rng.choice(["A1", "A2"]), (rng.randrange(2), rng.randrange(3)))
            columnar.process(tup)
            listy.process(tup)
        assert columnar.ds.resident_bytes() < listy.ds.resident_bytes()


class TestRejectedRestoreLeavesEngineUntouched:
    """A failed restore must be atomic: no partially remapped state."""

    def test_multi_window_mismatch_is_atomic(self):
        stream = sigma0_stream(60, seed=37)
        original = MultiQueryEngine()
        handles = [
            original.register("Q1(x, y) <- S(x, y), R(x, y)", window=10),
            original.register("Q2(x) <- T(x)", window=30),
            original.register("Q3(x, y) <- T(x), S(x, y)", window=30),
        ]
        for tup in stream[:30]:
            original.process(tup)
        original.unregister(handles[0])
        snap = roundtrip(original.snapshot(), "json")

        fresh = MultiQueryEngine()
        kept = [
            fresh.register("Q2(x) <- T(x)", window=30),
            # wrong window for the second surviving query
            fresh.register("Q3(x, y) <- T(x), S(x, y)", window=7),
        ]
        before = [(h.id, h.window) for h in fresh.handles()]
        with pytest.raises(SnapshotError):
            fresh.restore(snap)
        # Registry, handles and lanes are exactly as before the attempt.
        assert [(h.id, h.window) for h in fresh.handles()] == before
        assert set(fresh._lanes) == {h.id for h in kept}
        outputs = fresh.process(Tuple("T", (1,)))
        assert set(outputs) <= {h.id for h in kept}

    def test_multi_object_graph_lanes_rejected_before_mutation(self):
        original = MultiQueryEngine()
        original.register("Q2(x) <- T(x)", window=5)
        for tup in sigma0_stream(20, seed=41):
            original.process(tup)
        snap = roundtrip(original.snapshot(), "json")
        fresh = MultiQueryEngine(arena=False)
        handle = fresh.register("Q2(x) <- T(x)", window=5)
        with pytest.raises(SnapshotError):
            fresh.restore(snap)
        assert [h.id for h in fresh.handles()] == [handle.id]
        assert fresh.position == -1  # untouched


class TestSignatureStrictness:
    """Verification must see binary join predicates, not just join shapes."""

    def _pcea(self, position):
        from repro.core.pcea import PCEA, PCEATransition
        from repro.core.predicates import ProjectionEquality, RelationPredicate

        arm = PCEATransition(frozenset(), RelationPredicate("A"), {}, {"a"}, "q")
        close = PCEATransition(
            frozenset({"q"}),
            RelationPredicate("B"),
            {"q": ProjectionEquality({"A": (position,)}, {"B": (position,)})},
            {"b"},
            "f",
        )
        return PCEA(states={"q", "f"}, transitions=[arm, close], final={"f"})

    def test_join_position_difference_rejected(self):
        original = StreamingEvaluator(self._pcea(0), window=5)
        original.process(Tuple("A", (1, 2)))
        snap = roundtrip(original.snapshot(), "json")
        other = StreamingEvaluator(self._pcea(1), window=5)
        with pytest.raises(SnapshotError):
            other.restore(snap)
        # Sanity: the same automaton still verifies.
        same = StreamingEvaluator(self._pcea(0), window=5)
        same.restore(snap)
        assert same.position == original.position

    def test_multi_join_position_difference_rejected(self):
        original = MultiQueryEngine()
        original.register(self._pcea(0), window=5)
        original.process(Tuple("A", (1, 2)))
        snap = roundtrip(original.snapshot(), "json")
        other = MultiQueryEngine()
        other.register(self._pcea(1), window=5)
        with pytest.raises(SnapshotError):
            other.restore(snap)

    def test_truncated_snapshot_leaves_engine_untouched(self):
        original = StreamingEvaluator(hcq_to_pcea(parse_query(QUERY)), window=9)
        for tup in sigma0_stream(40, seed=3):
            original.process(tup)
        snap = roundtrip(original.snapshot(), "json")
        del snap["runtime"]
        fresh = StreamingEvaluator(hcq_to_pcea(parse_query(QUERY)), window=9)
        with pytest.raises(SnapshotError):
            fresh.restore(snap)
        assert fresh.position == -1 and fresh.hash_table_size() == 0
