"""Tests for CQ semantics over streams (repro.cq.stream_semantics) and streams."""

import pytest

from repro.cq.stream_semantics import cq_stream_new_outputs, cq_stream_output
from repro.cq.schema import Schema, Tuple
from repro.streams.stream import Stream, lazy_stream, prefix_database, stream_from_rows
from repro.valuation import Valuation

from helpers import QUERY_Q0, QUERY_Q2, SIGMA0, STREAM_S0


class TestStream:
    def test_materialised_stream_basics(self):
        stream = Stream(STREAM_S0, SIGMA0)
        assert len(stream) == 8
        assert stream[5] == Tuple("R", (2, 11))
        assert list(stream)[:2] == STREAM_S0[:2]

    def test_schema_validation(self):
        with pytest.raises(Exception):
            Stream([Tuple("T", (1, 2))], SIGMA0)

    def test_prefix(self):
        stream = Stream(STREAM_S0, SIGMA0)
        assert len(stream.prefix(3)) == 3

    def test_database_at_uses_positions_as_identifiers(self):
        stream = Stream(STREAM_S0, SIGMA0)
        database = stream.database_at(5)
        assert database.identifiers() == set(range(6))
        assert database[5] == Tuple("R", (2, 11))
        assert prefix_database(stream, 2).identifiers() == {0, 1, 2}

    def test_database_at_beyond_stream_raises(self):
        stream = Stream(STREAM_S0[:2], SIGMA0)
        with pytest.raises(IndexError):
            stream.database_at(5)

    def test_window_database(self):
        stream = Stream(STREAM_S0, SIGMA0)
        database = stream.window_database(position=5, window=2)
        assert database.identifiers() == {3, 4, 5}

    def test_lazy_stream_materialises_on_demand(self):
        def generate():
            for tup in STREAM_S0:
                yield tup

        stream = lazy_stream(generate, SIGMA0)
        assert stream.materialise(3) == STREAM_S0[:3]
        with pytest.raises(TypeError):
            Stream(iter(STREAM_S0))[0]

    def test_lazy_stream_iteration_materialises_fully(self):
        stream = Stream(iter(STREAM_S0), SIGMA0)
        assert list(stream) == STREAM_S0
        assert len(stream) == len(STREAM_S0)

    def test_stream_from_rows(self):
        stream = stream_from_rows(SIGMA0, [("T", (1,)), ("S", (1, 2))])
        assert len(stream) == 2


class TestCQStreamSemantics:
    def test_paper_outputs_at_position_five(self):
        outputs = cq_stream_output(QUERY_Q0, STREAM_S0, 5)
        expected = {
            Valuation({0: {1}, 1: {3}, 2: {5}}),
            Valuation({0: {1}, 1: {0}, 2: {5}}),
        }
        assert outputs == expected

    def test_outputs_are_cumulative(self):
        assert cq_stream_output(QUERY_Q0, STREAM_S0, 7) >= cq_stream_output(QUERY_Q0, STREAM_S0, 5)

    def test_new_outputs_require_last_position(self):
        new = cq_stream_new_outputs(QUERY_Q0, STREAM_S0, 5)
        assert new == {
            Valuation({0: {1}, 1: {3}, 2: {5}}),
            Valuation({0: {1}, 1: {0}, 2: {5}}),
        }
        assert cq_stream_new_outputs(QUERY_Q0, STREAM_S0, 6) == set()

    def test_window_restriction(self):
        full = cq_stream_output(QUERY_Q0, STREAM_S0, 5)
        windowed = cq_stream_output(QUERY_Q0, STREAM_S0, 5, window=2)
        assert windowed == {Valuation({0: {1}, 1: {3}, 2: {5}})} or windowed <= full
        # Window of size 5 keeps everything at position 5.
        assert cq_stream_output(QUERY_Q0, STREAM_S0, 5, window=5) == full

    def test_empty_prefix_has_no_outputs(self):
        assert cq_stream_output(QUERY_Q0, STREAM_S0, 0) == set()

    def test_accepts_stream_objects(self):
        stream = Stream(STREAM_S0, SIGMA0)
        assert cq_stream_output(QUERY_Q0, stream, 5) == cq_stream_output(QUERY_Q0, STREAM_S0, 5)

    def test_self_join_outputs_can_share_positions(self):
        stream = [Tuple("R", (0, 1, 2)), Tuple("U", (0, 1))]
        outputs = cq_stream_new_outputs(QUERY_Q2, stream, 1)
        assert Valuation({0: {0}, 1: {0}, 2: {1}}) in outputs

    def test_labels_are_atom_identifiers(self):
        for valuation in cq_stream_output(QUERY_Q0, STREAM_S0, 5):
            assert valuation.labels() == {0, 1, 2}
