"""Tests for Parallelized Complex Event Automata (repro.core.pcea) — Section 3."""

import pytest

from repro.core.pcea import PCEA, PCEATransition, check_unambiguous_on_stream
from repro.core.predicates import AtomJoinEquality, AtomUnaryPredicate, RelationPredicate, TrueEquality
from repro.core.runtree import Configuration, RunTreeNode
from repro.cq.query import Atom, Variable
from repro.cq.schema import Tuple
from repro.valuation import Valuation

from helpers import STREAM_S0, example_ccea_c0, example_pcea_p0

X, Y = Variable("x"), Variable("y")


class TestRunTreeNode:
    def test_valuation_is_product_of_configurations(self):
        leaf_a = RunTreeNode(Configuration("a", 0, {"l1"}))
        leaf_b = RunTreeNode(Configuration("b", 1, {"l2"}))
        root = RunTreeNode(Configuration("c", 2, {"l3"}), [leaf_a, leaf_b])
        assert root.valuation == Valuation({"l1": {0}, "l2": {1}, "l3": {2}})
        assert root.node_count() == 3
        assert {leaf.state for leaf in root.leaves()} == {"a", "b"}

    def test_is_simple(self):
        leaf_a = RunTreeNode(Configuration("a", 0, {"l"}))
        leaf_b = RunTreeNode(Configuration("b", 0, {"l"}))
        root = RunTreeNode(Configuration("c", 1, {"m"}), [leaf_a, leaf_b])
        assert not root.is_simple()
        disjoint = RunTreeNode(
            Configuration("c", 1, {"m"}),
            [RunTreeNode(Configuration("a", 0, {"l1"})), RunTreeNode(Configuration("b", 0, {"l2"}))],
        )
        assert disjoint.is_simple()

    def test_canonical_form_is_order_insensitive(self):
        leaf_a = RunTreeNode(Configuration("a", 0, {"l1"}))
        leaf_b = RunTreeNode(Configuration("b", 1, {"l2"}))
        first = RunTreeNode(Configuration("c", 2, {"m"}), [leaf_a, leaf_b])
        second = RunTreeNode(Configuration("c", 2, {"m"}), [leaf_b, leaf_a])
        assert first.canonical_form() == second.canonical_form()


class TestPCEAExampleP0:
    def test_example_33_outputs_at_position_five(self):
        """Example 3.3: both {1,3,5} and {0,1,5} are outputs of P0 at position 5."""
        pcea = example_pcea_p0()
        outputs = pcea.output_at(STREAM_S0, 5)
        assert Valuation({"dot": {1, 3, 5}}) in outputs
        assert Valuation({"dot": {0, 1, 5}}) in outputs
        assert outputs == {
            Valuation({"dot": {1, 3, 5}}),
            Valuation({"dot": {0, 1, 5}}),
        }

    def test_strictly_more_expressive_than_ccea_on_s0(self):
        """Proposition 3.4 (witness): the CCEA C0 misses the reordered match."""
        ccea_outputs = example_ccea_c0().output_at(STREAM_S0, 5)
        pcea_outputs = example_pcea_p0().output_at(STREAM_S0, 5)
        assert ccea_outputs < pcea_outputs

    def test_reordered_stream_only_matchable_by_pcea(self):
        """On R(a,b), T(a), S(a,b) the chain automaton cannot join R's second attribute."""
        stream = [Tuple("R", (0, 7)), Tuple("T", (0,)), Tuple("S", (0, 7))]
        pcea_outputs = example_pcea_p0().output_at(stream, 2)
        assert pcea_outputs == set()  # P0 needs R to arrive last
        # but with R last it matches:
        stream_last = [Tuple("T", (0,)), Tuple("S", (0, 7)), Tuple("R", (0, 7))]
        assert example_pcea_p0().output_at(stream_last, 2) == {Valuation({"dot": {0, 1, 2}})}

    def test_window_restricts_outputs(self):
        pcea = example_pcea_p0()
        assert pcea.output_at(STREAM_S0, 5, window=2) == set()
        assert pcea.output_at(STREAM_S0, 5, window=5) == {
            Valuation({"dot": {1, 3, 5}}),
            Valuation({"dot": {0, 1, 5}}),
        }

    def test_example_p0_is_unambiguous_on_s0(self):
        assert check_unambiguous_on_stream(example_pcea_p0(), STREAM_S0) == []

    def test_outputs_upto_consistency(self):
        pcea = example_pcea_p0()
        per_position = pcea.outputs_upto(STREAM_S0, 7)
        for position in range(8):
            assert per_position[position] == pcea.output_at(STREAM_S0, position)


class TestPCEAModel:
    def test_transition_validation(self):
        unary = RelationPredicate("T")
        with pytest.raises(ValueError):
            PCEATransition({"a"}, unary, {}, {"l"}, "b")  # missing binary for source a
        with pytest.raises(ValueError):
            PCEATransition(set(), unary, {"a": TrueEquality()}, {"l"}, "b")  # extra binary
        with pytest.raises(ValueError):
            PCEATransition(set(), unary, {}, set(), "b")  # empty labels

    def test_pcea_validation(self):
        unary = RelationPredicate("T")
        transition = PCEATransition(set(), unary, {}, {"l"}, "a")
        with pytest.raises(ValueError):
            PCEA({"a"}, [transition], {"zz"})
        with pytest.raises(ValueError):
            PCEA({"b"}, [transition], set())

    def test_size_definition(self):
        pcea = example_pcea_p0()
        # |Q| = 3; transitions: two initial (0 sources + 1 label) and one join (2 sources + 1 label).
        assert pcea.size() == 3 + 1 + 1 + 3

    def test_uses_only_equality_predicates(self):
        assert example_pcea_p0().uses_only_equality_predicates()

    def test_initial_transitions(self):
        assert sum(1 for _ in example_pcea_p0().initial_transitions()) == 2

    def test_naive_evaluation_guard(self):
        pcea = example_pcea_p0()
        hot_stream = [Tuple("T", (0,)), Tuple("S", (0, 0))] * 12 + [Tuple("R", (0, 0))] * 3
        with pytest.raises(RuntimeError):
            pcea.run_trees_upto(hot_stream, len(hot_stream) - 1, max_nodes=10)

    def test_ambiguous_automaton_is_detected(self):
        """Two initial transitions with the same label on the same tuple → duplicate valuations."""
        unary = AtomUnaryPredicate(Atom("T", (X,)))
        pcea = PCEA(
            states={"a", "b"},
            transitions=[
                PCEATransition(set(), unary, {}, {"l"}, "a"),
                PCEATransition(set(), unary, {}, {"l"}, "b"),
            ],
            final={"a", "b"},
        )
        violations = check_unambiguous_on_stream(pcea, [Tuple("T", (1,))])
        assert violations

    def test_non_simple_run_is_detected(self):
        """A run marking the same position with the same label through two nodes is not simple."""
        unary_t = AtomUnaryPredicate(Atom("T", (X,)))
        unary_r = AtomUnaryPredicate(Atom("R", (X, Y)))
        join = AtomJoinEquality(Atom("T", (X,)), Atom("R", (X, Y)))
        pcea = PCEA(
            states={"a", "b", "c"},
            transitions=[
                PCEATransition(set(), unary_t, {}, {"l"}, "a"),
                PCEATransition(set(), unary_t, {}, {"l"}, "b"),
                PCEATransition({"a", "b"}, unary_r, {"a": join, "b": join}, {"m"}, "c"),
            ],
            final={"c"},
        )
        stream = [Tuple("T", (1,)), Tuple("R", (1, 5))]
        violations = check_unambiguous_on_stream(pcea, stream)
        assert any("non-simple" in violation for violation in violations)
