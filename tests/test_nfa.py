"""Tests for classical NFA/DFA (repro.automata.nfa)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.nfa import DFA, NFA


def ends_with_ab() -> NFA:
    """Words over {a, b} ending with 'ab'."""
    return NFA(
        states={0, 1, 2},
        alphabet={"a", "b"},
        transitions={
            (0, "a", 0),
            (0, "b", 0),
            (0, "a", 1),
            (1, "b", 2),
        },
        initial={0},
        final={2},
    )


def random_nfa_strategy(max_states: int = 4) -> st.SearchStrategy[NFA]:
    alphabet = ["a", "b"]

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_states))
        states = list(range(n))
        transitions = draw(
            st.sets(
                st.tuples(
                    st.sampled_from(states),
                    st.sampled_from(alphabet),
                    st.sampled_from(states),
                ),
                max_size=2 * n * len(alphabet),
            )
        )
        initial = draw(st.sets(st.sampled_from(states), min_size=1, max_size=n))
        final = draw(st.sets(st.sampled_from(states), max_size=n))
        return NFA(states, alphabet, transitions, initial, final)

    return build()


class TestNFA:
    def test_accepts_examples(self):
        nfa = ends_with_ab()
        assert nfa.accepts(["a", "b"])
        assert nfa.accepts(["b", "b", "a", "b"])
        assert not nfa.accepts(["a", "b", "a"])
        assert not nfa.accepts([])

    def test_runs_enumeration(self):
        nfa = ends_with_ab()
        runs = list(nfa.runs(["a", "b"]))
        assert [0, 1, 2] in runs
        assert all(run[0] in nfa.initial for run in runs)

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            NFA({0}, {"a"}, {(0, "a", 1)}, {0}, set())
        with pytest.raises(ValueError):
            NFA({0}, {"a"}, set(), {1}, set())
        with pytest.raises(ValueError):
            NFA({0}, {"a"}, {(0, "z", 0)}, {0}, set())

    def test_size(self):
        assert ends_with_ab().size() == 3 + 4


class TestDeterminization:
    def test_determinize_preserves_examples(self):
        nfa = ends_with_ab()
        dfa = nfa.determinize()
        for word in (["a", "b"], ["b", "a"], ["a", "a", "b"], [], ["b"]):
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_dfa_partial_transition(self):
        dfa = DFA({0, 1}, {"a"}, {(0, "a"): 1}, 0, {1})
        assert dfa.accepts(["a"])
        assert not dfa.accepts(["a", "a"])

    def test_trim_removes_unreachable(self):
        dfa = DFA({0, 1, 2}, {"a"}, {(0, "a"): 1, (2, "a"): 2}, 0, {1})
        trimmed = dfa.trim()
        assert 2 not in trimmed.states
        assert trimmed.accepts(["a"])

    @settings(max_examples=50, deadline=None)
    @given(random_nfa_strategy(), st.lists(st.sampled_from(["a", "b"]), max_size=6))
    def test_determinization_language_equivalence(self, nfa, word):
        assert nfa.determinize().accepts(word) == nfa.accepts(word)

    @settings(max_examples=30, deadline=None)
    @given(random_nfa_strategy())
    def test_subset_construction_size_bound(self, nfa):
        dfa = nfa.determinize()
        assert len(dfa.states) <= 2 ** len(nfa.states)
