"""Tests for the extensions: general (non-equality) evaluation and disambiguation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.evaluation import StreamingEvaluator
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import PCEA, PCEATransition
from repro.core.predicates import (
    AtomUnaryPredicate,
    OrderPredicate,
    RelationPredicate,
    TrueEquality,
)
from repro.cq.query import Atom, Variable
from repro.cq.schema import Schema, Tuple
from repro.extensions.disambiguation import ambiguity_witness, is_syntactically_unambiguous
from repro.extensions.general_evaluation import GeneralStreamingEvaluator
from repro.valuation import Valuation

from helpers import QUERY_Q0, SIGMA0, STREAM_S0, example_pcea_p0, star_query, streams_strategy

X, Y = Variable("x"), Variable("y")


class TestOrderPredicate:
    def test_basic_comparisons(self):
        pred = OrderPredicate("Buy", 1, "<", "Sell", 1)
        assert pred.holds(Tuple("Buy", (1, 10)), Tuple("Sell", (1, 20)))
        assert not pred.holds(Tuple("Buy", (1, 30)), Tuple("Sell", (1, 20)))
        assert not pred.holds(Tuple("Sell", (1, 10)), Tuple("Sell", (1, 20)))

    def test_out_of_range_and_type_errors_are_false(self):
        pred = OrderPredicate("Buy", 5, "<", "Sell", 1)
        assert not pred.holds(Tuple("Buy", (1, 10)), Tuple("Sell", (1, 20)))
        mixed = OrderPredicate("Buy", 0, "<", "Sell", 0)
        assert not mixed.holds(Tuple("Buy", ("abc",)), Tuple("Sell", (3,)))

    def test_all_operators(self):
        for operator, expected in [("<", True), ("<=", True), (">", False), (">=", False), ("!=", True), ("==", False)]:
            pred = OrderPredicate("A", 0, operator, "B", 0)
            assert pred.holds(Tuple("A", (1,)), Tuple("B", (2,))) is expected


def increasing_price_pcea() -> PCEA:
    """Buy followed by a Sell of the same... no — of *any* symbol at a higher price."""
    buy, sell = Atom("Buy", (X, Y)), Atom("Sell", (X, Y))
    return PCEA(
        states={"b", "s"},
        transitions=[
            PCEATransition(set(), AtomUnaryPredicate(buy), {}, {"buy"}, "b"),
            PCEATransition(
                {"b"},
                AtomUnaryPredicate(sell),
                {"b": OrderPredicate("Buy", 1, "<", "Sell", 1)},
                {"sell"},
                "s",
            ),
        ],
        final={"s"},
    )


class TestGeneralStreamingEvaluator:
    def test_agrees_with_algorithm_1_on_equality_pcea(self):
        pcea = example_pcea_p0()
        general = GeneralStreamingEvaluator(pcea, window=10)
        hashed = StreamingEvaluator(pcea, window=10)
        for tup in STREAM_S0:
            assert set(general.process(tup)) == set(hashed.process(tup))

    def test_agrees_with_naive_pcea_on_hcq(self):
        pcea = hcq_to_pcea(QUERY_Q0)
        general = GeneralStreamingEvaluator(pcea, window=len(STREAM_S0) + 1)
        for position, tup in enumerate(STREAM_S0):
            assert set(general.process(tup)) == pcea.output_at(STREAM_S0, position)

    def test_supports_inequality_predicates(self):
        pcea = increasing_price_pcea()
        engine = GeneralStreamingEvaluator(pcea, window=10)
        stream = [
            Tuple("Buy", (1, 30)),
            Tuple("Sell", (1, 20)),   # lower price: no match
            Tuple("Sell", (1, 40)),   # higher than the buy at position 0
            Tuple("Buy", (2, 35)),
            Tuple("Sell", (2, 50)),   # higher than both buys
        ]
        outputs = engine.run(stream)
        assert outputs[1] == []
        assert set(outputs[2]) == {Valuation({"buy": {0}, "sell": {2}})}
        assert set(outputs[4]) == {
            Valuation({"buy": {0}, "sell": {4}}),
            Valuation({"buy": {3}, "sell": {4}}),
        }

    def test_inequality_rejected_by_algorithm_1(self):
        with pytest.raises(Exception):
            StreamingEvaluator(increasing_price_pcea(), window=10)

    def test_window_eviction(self):
        pcea = increasing_price_pcea()
        engine = GeneralStreamingEvaluator(pcea, window=1)
        stream = [Tuple("Buy", (1, 10)), Tuple("Sell", (9, 1)), Tuple("Sell", (1, 20))]
        outputs = engine.run(stream)
        assert outputs[2] == []  # the buy at position 0 is out of the window
        assert engine.live_run_count() <= 2

    def test_naive_node_scan_grows_with_live_runs(self):
        pcea = hcq_to_pcea(star_query(2))
        engine = GeneralStreamingEvaluator(pcea, window=1000)
        for position in range(50):
            engine.process(Tuple("A1" if position % 2 else "A2", (0, position)))
        assert engine.nodes_scanned > 50  # linear-in-data behaviour, unlike Algorithm 1

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=8, domain=2), st.integers(min_value=0, max_value=6))
    def test_random_equivalence_with_algorithm_1(self, stream, window):
        pcea = hcq_to_pcea(QUERY_Q0)
        general = GeneralStreamingEvaluator(pcea, window=window)
        hashed = StreamingEvaluator(pcea, window=window)
        for tup in stream:
            assert set(general.process(tup)) == set(hashed.process(tup))


class TestGeneralRuntimeParity:
    """The general evaluator shares the runtime surface of the hashed engines."""

    def _stream(self, length, seed=7):
        import random

        rng = random.Random(seed)
        return [
            Tuple("Buy" if rng.random() < 0.5 else "Sell", (rng.randrange(3), rng.randrange(50)))
            for _ in range(length)
        ]

    @pytest.mark.parametrize("batch_size", [1, 3, 7, 50])
    def test_process_many_matches_per_tuple(self, batch_size):
        stream = self._stream(120)
        pcea = increasing_price_pcea()
        batched = GeneralStreamingEvaluator(pcea, window=8)
        stepwise = GeneralStreamingEvaluator(pcea, window=8)
        batched_outputs = []
        for begin in range(0, len(stream), batch_size):
            batched_outputs.extend(batched.process_many(stream[begin : begin + batch_size]))
        stepwise_outputs = [stepwise.process(tup) for tup in stream]
        assert len(batched_outputs) == len(stepwise_outputs)
        for left, right in zip(batched_outputs, stepwise_outputs):
            assert left == right  # same valuations, same order
        assert batched.position == stepwise.position
        # Batched eviction reclaims the same runs by the end of the stream.
        assert batched.live_run_count() == stepwise.live_run_count()

    def test_dispatch_index_prunes_irrelevant_relations(self):
        pcea = increasing_price_pcea()
        indexed = GeneralStreamingEvaluator(pcea, window=10, indexed=True)
        scanning = GeneralStreamingEvaluator(pcea, window=10, indexed=False)
        stream = self._stream(60) + [Tuple("Noise", (1, 2)) for _ in range(60)]
        for tup in stream:
            assert indexed.process(tup) == scanning.process(tup)
        # Candidate pruning: the indexed engine never probed Noise tuples.
        assert indexed.stats.transitions_scanned < scanning.stats.transitions_scanned

    def test_live_runs_window_bounded_by_shared_sweep(self):
        pcea = increasing_price_pcea()
        engine = GeneralStreamingEvaluator(pcea, window=16)
        peak = 0
        for tup in self._stream(2_000):
            engine.process(tup)
            peak = max(peak, engine.live_run_count())
        assert engine.evicted > 100
        # At most one stored run per tuple position inside the window (+1 for
        # the position being processed).
        assert peak <= 2 * (16 + 1) + 2
        assert engine.hash_table_size() == engine.live_run_count()

    def test_stats_and_memory_surface(self):
        pcea = increasing_price_pcea()
        engine = GeneralStreamingEvaluator(pcea, window=10, collect_stats=True)
        for tup in self._stream(80):
            engine.process(tup)
        stats = engine.stats
        assert stats.tuples_processed == 80
        assert stats.transitions_fired > 0
        assert stats.hash_lookups == engine.nodes_scanned > 0
        assert stats.outputs_enumerated > 0
        memory = engine.memory_info()
        assert memory["arena"] == 1 and memory["nodes_created"] > 0
        info = engine.dispatch_info()
        assert info["queries"] == 1 and info["transitions"] == len(pcea.transitions)
        engine.reset_statistics()
        assert engine.stats.tuples_processed == 0
        assert engine.nodes_scanned == 0

    def test_stats_off_skips_counters(self):
        pcea = increasing_price_pcea()
        engine = GeneralStreamingEvaluator(pcea, window=10, collect_stats=False)
        for tup in self._stream(40):
            engine.process(tup)
        assert engine.stats.tuples_processed == 0
        assert engine.nodes_scanned > 0  # the signature counter always runs


class TestDisambiguation:
    def test_syntactic_condition_accepts_disjoint_chain(self):
        pcea = PCEA(
            states={"a", "b"},
            transitions=[
                PCEATransition(set(), RelationPredicate("T"), {}, {"t"}, "a"),
                PCEATransition({"a"}, RelationPredicate("S"), {"a": TrueEquality()}, {"s"}, "b"),
            ],
            final={"b"},
        )
        assert is_syntactically_unambiguous(pcea)

    def test_syntactic_condition_rejects_duplicate_label_writers(self):
        unary = RelationPredicate("T")
        pcea = PCEA(
            states={"a", "b"},
            transitions=[
                PCEATransition(set(), unary, {}, {"l"}, "a"),
                PCEATransition(set(), unary, {}, {"l"}, "b"),
            ],
            final={"a", "b"},
        )
        assert not is_syntactically_unambiguous(pcea)

    def test_syntactic_condition_is_only_sufficient(self):
        """The Theorem 4.1 automata are unambiguous but not syntactically so."""
        pcea = hcq_to_pcea(QUERY_Q0)
        assert is_syntactically_unambiguous(pcea) in (False,)  # unknown, not a refutation

    def test_witness_found_for_ambiguous_automaton(self):
        unary = RelationPredicate("T")
        pcea = PCEA(
            states={"a", "b"},
            transitions=[
                PCEATransition(set(), unary, {}, {"l"}, "a"),
                PCEATransition(set(), unary, {}, {"l"}, "b"),
            ],
            final={"a", "b"},
        )
        witness = ambiguity_witness(pcea, Schema({"T": 1}), max_length=1, domain=(0,))
        assert witness is not None
        assert len(witness) == 1

    def test_no_witness_for_unambiguous_automata(self):
        pcea = example_pcea_p0()
        witness = ambiguity_witness(pcea, SIGMA0, max_length=2, domain=(0,), max_streams=500)
        assert witness is None

    def test_witness_search_respects_cap(self):
        pcea = example_pcea_p0()
        assert ambiguity_witness(pcea, SIGMA0, max_length=3, domain=(0, 1), max_streams=5) is None


class TestSequenceRings:
    """The per-state ring buffers that replaced the compacted seq lists."""

    def _stream(self, length, seed=7):
        import random

        rng = random.Random(seed)
        stream = []
        for _ in range(length):
            relation = rng.choice(["Buy", "Sell"])
            stream.append(Tuple(relation, (rng.randrange(3), rng.randrange(60))))
        return stream

    def test_tiny_ring_capacity_grows_and_stays_correct(self):
        pcea = increasing_price_pcea()
        tiny = GeneralStreamingEvaluator(pcea, window=20, ring_capacity=1)
        roomy = GeneralStreamingEvaluator(pcea, window=20, ring_capacity=1024)
        for tup in self._stream(600):
            assert tiny.process(tup) == roomy.process(tup)
        assert any(ring.mask + 1 > 1 for ring in tiny._rings.values())

    def test_sweep_advances_ring_heads(self):
        pcea = increasing_price_pcea()
        engine = GeneralStreamingEvaluator(pcea, window=8)
        for tup in self._stream(800):
            engine.process(tup)
            # Sweep-driven head advance: rings never accumulate dead leading
            # entries beyond the live window of runs.
            live = sum(len(ring) for ring in engine._rings.values())
            assert live <= 2 * (8 + 1) + 2
        assert engine.evicted > 100
        # Every ring entry resolves to a live hash entry (no garbage scanned).
        for state, ring in engine._rings.items():
            for seq in ring.live():
                assert (state, seq) in engine._hash

    def test_batched_sweep_keeps_rings_consistent(self):
        pcea = increasing_price_pcea()
        batched = GeneralStreamingEvaluator(pcea, window=6, ring_capacity=2)
        stepwise = GeneralStreamingEvaluator(pcea, window=6, ring_capacity=2)
        stream = self._stream(400, seed=9)
        for start in range(0, len(stream), 16):
            batch = stream[start : start + 16]
            assert batched.process_many(batch) == [stepwise.process(t) for t in batch]
        assert {s: r.live() for s, r in batched._rings.items()} == {
            s: r.live() for s, r in stepwise._rings.items()
        }

    def test_ring_capacity_validation_and_memory_exposure(self):
        pcea = increasing_price_pcea()
        with pytest.raises(ValueError):
            GeneralStreamingEvaluator(pcea, window=5, ring_capacity=0)
        engine = GeneralStreamingEvaluator(pcea, window=5, ring_capacity=16)
        for tup in self._stream(50):
            engine.process(tup)
        memory = engine.memory_info()
        assert memory["ring_capacity"] == 16
        assert memory["ring_states"] == len(engine._rings) > 0
        assert memory["ring_live"] == sum(len(r) for r in engine._rings.values())
        assert memory["ring_slots"] >= memory["ring_live"]
