"""Tests for PFA/DFA language operations (repro.automata.operations)."""

from hypothesis import given, settings, strategies as st

from repro.automata.nfa import NFA
from repro.automata.operations import (
    dfa_product,
    languages_equal_up_to,
    pfa_difference_dfa,
    pfa_intersection_dfa,
    pfa_union,
)
from repro.automata.pfa import PFA, determinize_pfa


def contains_symbol(symbol: str) -> PFA:
    """Words over {a, b} containing ``symbol`` at least once."""
    transitions = {(frozenset({0}), s, 0) for s in "ab"} | {(frozenset({1}), s, 1) for s in "ab"}
    transitions.add((frozenset({0}), symbol, 1))
    return PFA({0, 1}, {"a", "b"}, transitions, {0}, {1})


def words(max_length: int):
    result = [()]
    for _ in range(max_length):
        result = result + [w + (s,) for w in result if len(w) == len(result[-1]) or True for s in "ab"]
    # Simpler: generate all words up to max_length explicitly.
    all_words = [()]
    frontier = [()]
    for _ in range(max_length):
        frontier = [w + (s,) for w in frontier for s in "ab"]
        all_words.extend(frontier)
    return all_words


class TestPFAUnion:
    def test_union_accepts_either_language(self):
        union = pfa_union(contains_symbol("a"), contains_symbol("b"))
        assert union.accepts(["a"])
        assert union.accepts(["b"])
        assert not union.accepts([])

    def test_union_language_is_exactly_the_union(self):
        first, second = contains_symbol("a"), contains_symbol("b")
        union = pfa_union(first, second)
        for word in words(4):
            assert union.accepts(word) == (first.accepts(word) or second.accepts(word))


class TestProducts:
    def test_intersection(self):
        first, second = contains_symbol("a"), contains_symbol("b")
        both = pfa_intersection_dfa(first, second)
        for word in words(4):
            assert both.accepts(word) == (first.accepts(word) and second.accepts(word))

    def test_difference(self):
        first, second = contains_symbol("a"), contains_symbol("b")
        only_a = pfa_difference_dfa(first, second)
        for word in words(4):
            assert only_a.accepts(word) == (first.accepts(word) and not second.accepts(word))

    def test_dfa_product_requires_same_alphabet(self):
        import pytest

        d1 = determinize_pfa(contains_symbol("a"))
        nfa = NFA({0}, {"c"}, set(), {0}, {0})
        with pytest.raises(ValueError):
            dfa_product(d1, nfa.determinize(), lambda a, b: a and b)

    def test_product_with_or_combiner(self):
        first, second = contains_symbol("a"), contains_symbol("b")
        either = dfa_product(
            determinize_pfa(first), determinize_pfa(second), lambda a, b: a or b
        )
        for word in words(4):
            assert either.accepts(word) == (first.accepts(word) or second.accepts(word))


class TestBoundedEquivalence:
    def test_equal_automata(self):
        assert languages_equal_up_to(contains_symbol("a"), contains_symbol("a"), 4)

    def test_different_automata(self):
        assert not languages_equal_up_to(contains_symbol("a"), contains_symbol("b"), 3)

    def test_union_is_commutative_up_to_language(self):
        first, second = contains_symbol("a"), contains_symbol("b")
        assert languages_equal_up_to(pfa_union(first, second), pfa_union(second, first), 4)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b"]), max_size=5))
    def test_union_with_self_is_identity(self, word):
        pfa = contains_symbol("a")
        union = pfa_union(pfa, pfa)
        assert union.accepts(word) == pfa.accepts(word)
