"""Tests for Chain Complex Event Automata (repro.core.ccea) — Section 2."""

import pytest

from repro.core.ccea import CCEA, CCEATransition, chain_ccea
from repro.core.predicates import ProjectionEquality, RelationPredicate
from repro.valuation import Valuation

from helpers import STREAM_S0, example_ccea_c0


class TestCCEAExampleC0:
    def test_accepting_run_at_position_five(self):
        """Example 2.1: C0 over S0 yields {dot -> {1, 3, 5}} at position 5."""
        ccea = example_ccea_c0()
        outputs = ccea.output_at(STREAM_S0, 5)
        assert Valuation({"dot": {1, 3, 5}}) in outputs

    def test_ordered_semantics_excludes_reordered_match(self):
        """C0 requires T before S before R, so {dot -> {0, 1, 5}} is NOT an output."""
        ccea = example_ccea_c0()
        outputs = ccea.output_at(STREAM_S0, 5)
        assert Valuation({"dot": {0, 1, 5}}) not in outputs

    def test_all_outputs_at_position_five(self):
        ccea = example_ccea_c0()
        outputs = ccea.output_at(STREAM_S0, 5)
        assert outputs == {Valuation({"dot": {1, 3, 5}})}

    def test_outputs_at_other_positions(self):
        ccea = example_ccea_c0()
        per_position = ccea.outputs_upto(STREAM_S0, 7)
        assert per_position[5] == {Valuation({"dot": {1, 3, 5}})}
        for position in (0, 1, 2, 3, 4, 6, 7):
            assert per_position[position] == set()

    def test_output_at_matches_outputs_upto(self):
        ccea = example_ccea_c0()
        per_position = ccea.outputs_upto(STREAM_S0, 7)
        for position in range(8):
            assert per_position[position] == ccea.output_at(STREAM_S0, position)


class TestCCEAConstruction:
    def test_validation_rejects_unknown_states(self):
        with pytest.raises(ValueError):
            CCEA({"a"}, {"a": (RelationPredicate("T"), {"l"})}, [], {"b"})
        with pytest.raises(ValueError):
            CCEA({"a"}, {"b": (RelationPredicate("T"), {"l"})}, [], set())

    def test_empty_labels_rejected(self):
        with pytest.raises(ValueError):
            CCEATransition("a", RelationPredicate("T"), ProjectionEquality({}, {}), set(), "b")
        with pytest.raises(ValueError):
            CCEA({"a"}, {"a": (RelationPredicate("T"), set())}, [], set())

    def test_labels_inferred(self):
        ccea = example_ccea_c0()
        assert ccea.labels == {"dot"}

    def test_size(self):
        assert example_ccea_c0().size() == 3 + 2 * 2 + 1

    def test_chain_builder(self):
        chain = chain_ccea(
            [
                (RelationPredicate("T"), None, {"t"}),
                (RelationPredicate("S"), ProjectionEquality({"T": (0,)}, {"S": (0,)}), {"s"}),
            ]
        )
        outputs = chain.output_at(STREAM_S0, 3)
        assert Valuation({"t": {1}, "s": {3}}) in outputs

    def test_chain_builder_requires_steps(self):
        with pytest.raises(ValueError):
            chain_ccea([])


class TestCCEAToPCEA:
    def test_embedding_preserves_outputs(self):
        ccea = example_ccea_c0()
        pcea = ccea.to_pcea()
        for position in range(8):
            assert pcea.output_at(STREAM_S0, position) == ccea.output_at(STREAM_S0, position)

    def test_embedding_produces_single_source_transitions(self):
        pcea = example_ccea_c0().to_pcea()
        assert all(len(t.sources) <= 1 for t in pcea.transitions)

    def test_embedding_keeps_equality_predicates(self):
        pcea = example_ccea_c0().to_pcea()
        assert pcea.uses_only_equality_predicates()
