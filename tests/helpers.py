"""Shared fixtures and hypothesis strategies for the test suite.

Centralises the paper's running examples (schema ``σ0``, stream ``S0``, queries
``Q0``/``Q1``/``Q2``, automata ``C0``/``P0``) plus strategies for random
streams and random hierarchical queries.
"""

from __future__ import annotations

from typing import List, Sequence

from hypothesis import strategies as st

from repro.core.ccea import CCEA, CCEATransition
from repro.core.pcea import PCEA, PCEATransition
from repro.core.predicates import (
    AtomJoinEquality,
    AtomUnaryPredicate,
    ProjectionEquality,
    RelationPredicate,
    VariableAtomEquality,
)
from repro.cq.query import Atom, ConjunctiveQuery, Variable
from repro.cq.schema import Schema, Tuple


# ----------------------------------------------------------- paper's examples
SIGMA0 = Schema({"R": 2, "S": 2, "T": 1})

#: The stream ``S0`` of Section 2 (first eight tuples).
STREAM_S0: List[Tuple] = [
    Tuple("S", (2, 11)),   # 0
    Tuple("T", (2,)),      # 1
    Tuple("R", (1, 10)),   # 2
    Tuple("S", (2, 11)),   # 3
    Tuple("T", (1,)),      # 4
    Tuple("R", (2, 11)),   # 5
    Tuple("S", (4, 13)),   # 6
    Tuple("T", (1,)),      # 7
]

X, Y, Z, V, W = (Variable(name) for name in "xyzvw")

#: ``Q0(x, y) <- T(x), S(x, y), R(x, y)`` — hierarchical, no self joins.
QUERY_Q0 = ConjunctiveQuery(
    [X, Y], [Atom("T", (X,)), Atom("S", (X, Y)), Atom("R", (X, Y))], name="Q0"
)

#: ``Q1(x, y) <- T(x), R(x, y), S(2, y), T(x)`` — has self joins, not hierarchical
#: (it is not full either once the constant is involved); used for negative tests.
QUERY_Q1 = ConjunctiveQuery(
    [X, Y],
    [Atom("T", (X,)), Atom("R", (X, Y)), Atom("S", (2, Y)), Atom("T", (X,))],
    name="Q1",
)

#: The Figure-3 self-join query ``Q2(x,y,z,v) <- R(x,y,z), R(x,y,v), U(x,y)``.
QUERY_Q2 = ConjunctiveQuery(
    [X, Y, Z, V],
    [Atom("R", (X, Y, Z)), Atom("R", (X, Y, V)), Atom("U", (X, Y))],
    name="Q2",
)

#: The Figure-3 query ``Q1'(x,y,z,v,w) <- R(x,y,z), S(x,y,v), T(x,w), U(x,y)``
#: (hierarchical, deeper q-tree).  Named QUERY_STARDEEP to avoid confusion with Q1.
QUERY_STARDEEP = ConjunctiveQuery(
    [X, Y, Z, V, W],
    [
        Atom("R", (X, Y, Z)),
        Atom("S", (X, Y, V)),
        Atom("T", (X, W)),
        Atom("U", (X, Y)),
    ],
    name="Q1deep",
)

#: The acyclic but non-hierarchical query ``T(x), S(x, y), R(y)`` (Theorem 4.2 shape).
QUERY_NON_HIERARCHICAL = ConjunctiveQuery(
    [X, Y], [Atom("T", (X,)), Atom("S", (X, Y)), Atom("R", (Y,))], name="NH"
)


def example_ccea_c0() -> CCEA:
    """The CCEA ``C_0`` of Example 2.1: ``T(x); S(x,y); R(x,y)`` in this order."""
    t_pred = RelationPredicate("T")
    s_pred = RelationPredicate("S")
    r_pred = RelationPredicate("R")
    tx_sxy = ProjectionEquality({"T": (0,)}, {"S": (0,)})
    sxy_rxy = ProjectionEquality({"S": (0, 1)}, {"R": (0, 1)})
    return CCEA(
        states={"q0", "q1", "q2"},
        initial={"q0": (t_pred, {"dot"})},
        transitions=[
            CCEATransition("q0", s_pred, tx_sxy, {"dot"}, "q1"),
            CCEATransition("q1", r_pred, sxy_rxy, {"dot"}, "q2"),
        ],
        final={"q2"},
    )


def example_pcea_p0() -> PCEA:
    """The PCEA ``P_0`` of Example 3.3 / Figure 1 (right).

    A ``T(x)`` and an ``S(x, y)`` (in either order) joined later by an
    ``R(x, y)`` matching both.
    """
    atom_t, atom_s, atom_r = Atom("T", (X,)), Atom("S", (X, Y)), Atom("R", (X, Y))
    return PCEA(
        states={"q0", "q1", "q2"},
        transitions=[
            PCEATransition(frozenset(), AtomUnaryPredicate(atom_t), {}, {"dot"}, "q0"),
            PCEATransition(frozenset(), AtomUnaryPredicate(atom_s), {}, {"dot"}, "q1"),
            PCEATransition(
                {"q0", "q1"},
                AtomUnaryPredicate(atom_r),
                {
                    "q0": AtomJoinEquality(atom_t, atom_r),
                    "q1": AtomJoinEquality(atom_s, atom_r),
                },
                {"dot"},
                "q2",
            ),
        ],
        final={"q2"},
    )


# ------------------------------------------------------- hypothesis strategies
def tuples_strategy(
    schema: Schema = SIGMA0, domain: int = 4
) -> st.SearchStrategy[Tuple]:
    """Random tuples of ``schema`` with small integer values (to force joins)."""
    names = sorted(schema.relation_names)

    def build(name: str, values: List[int]) -> Tuple:
        return Tuple(name, tuple(values[: schema.arity(name)]))

    return st.builds(
        build,
        st.sampled_from(names),
        st.lists(st.integers(min_value=0, max_value=domain - 1), min_size=3, max_size=3),
    )


def streams_strategy(
    schema: Schema = SIGMA0, max_length: int = 10, domain: int = 3
) -> st.SearchStrategy[List[Tuple]]:
    """Short random streams with a small value domain (many accidental joins)."""
    return st.lists(tuples_strategy(schema, domain), min_size=0, max_size=max_length)


def star_query(arms: int, prefix: str = "A") -> ConjunctiveQuery:
    """``Q(x, ȳ) <- A1(x, y1), ..., Ak(x, yk)``."""
    x = Variable("x")
    head = [x]
    atoms = []
    for j in range(1, arms + 1):
        y = Variable(f"y{j}")
        head.append(y)
        atoms.append(Atom(f"{prefix}{j}", (x, y)))
    return ConjunctiveQuery(head, atoms, name="Star")


def star_schema(arms: int, prefix: str = "A") -> Schema:
    return Schema({f"{prefix}{j}": 2 for j in range(1, arms + 1)})
