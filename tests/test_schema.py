"""Unit tests for schemas, tuples and data values (repro.cq.schema)."""

import pytest
from hypothesis import given, strategies as st

from repro.cq.schema import Schema, SchemaError, Tuple, make_tuple, tuples_of, value_size


class TestSchema:
    def test_arity_lookup(self):
        schema = Schema({"R": 2, "T": 1})
        assert schema.arity("R") == 2
        assert schema.arity("T") == 1

    def test_unknown_relation_raises(self):
        schema = Schema({"R": 2})
        with pytest.raises(SchemaError):
            schema.arity("S")

    def test_relation_names(self):
        schema = Schema({"R": 2, "S": 2, "T": 1})
        assert schema.relation_names == {"R", "S", "T"}
        assert "R" in schema
        assert "X" not in schema
        assert len(schema) == 3
        assert set(schema) == {"R", "S", "T"}

    def test_invalid_relation_name(self):
        with pytest.raises(SchemaError):
            Schema({"": 1})

    def test_invalid_arity(self):
        with pytest.raises(SchemaError):
            Schema({"R": -1})

    def test_schema_is_hashable_and_comparable(self):
        a = Schema({"R": 2, "T": 1})
        b = Schema({"T": 1, "R": 2})
        assert a == b
        assert hash(a) == hash(b)

    def test_validate_accepts_conforming_tuple(self):
        schema = Schema({"S": 2})
        schema.validate(Tuple("S", (2, 11)))

    def test_validate_rejects_wrong_relation(self):
        schema = Schema({"S": 2})
        with pytest.raises(SchemaError):
            schema.validate(Tuple("R", (2, 11)))

    def test_validate_rejects_wrong_arity(self):
        schema = Schema({"S": 2})
        with pytest.raises(SchemaError):
            schema.validate(Tuple("S", (2,)))

    def test_tuple_factory(self):
        schema = Schema({"S": 2})
        tup = schema.tuple("S", 2, 11)
        assert tup == Tuple("S", (2, 11))

    def test_tuples_of(self):
        schema = Schema({"S": 2})
        rows = tuples_of(schema, "S", [(1, 2), (3, 4)])
        assert rows == [Tuple("S", (1, 2)), Tuple("S", (3, 4))]


class TestTuple:
    def test_basic_accessors(self):
        tup = Tuple("S", (2, 11))
        assert tup.relation == "S"
        assert tup.values == (2, 11)
        assert tup.arity == 2
        assert tup.value(1) == 11

    def test_equality_is_structural(self):
        assert Tuple("S", (2, 11)) == Tuple("S", (2, 11))
        assert Tuple("S", (2, 11)) != Tuple("S", (2, 12))
        assert Tuple("S", (2, 11)) != Tuple("R", (2, 11))

    def test_size_counts_values(self):
        assert Tuple("T", (2,)).size == 2
        assert Tuple("S", (2, 11)).size == 3

    def test_size_with_strings(self):
        assert Tuple("N", ("abc",)).size == 1 + 3
        assert value_size("") == 1

    def test_projection(self):
        tup = Tuple("S", (2, 11, 7))
        assert tup.project((2, 0)) == (7, 2)
        assert tup.project(()) == ()

    def test_str_rendering(self):
        assert str(Tuple("S", (2, 11))) == "S(2, 11)"
        assert str(Tuple("N", ("x",))) == "N('x')"

    def test_make_tuple(self):
        assert make_tuple("R", 1, 2) == Tuple("R", (1, 2))

    def test_values_coerced_to_tuple(self):
        tup = Tuple("S", [1, 2])  # type: ignore[arg-type]
        assert tup.values == (1, 2)
        assert hash(tup) == hash(Tuple("S", (1, 2)))

    def test_ordering_is_total_on_same_types(self):
        assert Tuple("R", (1, 2)) < Tuple("S", (0, 0))
        assert Tuple("R", (1, 2)) < Tuple("R", (1, 3))

    @given(st.lists(st.integers(), min_size=0, max_size=5))
    def test_size_is_one_plus_arity_for_int_values(self, values):
        tup = Tuple("R", tuple(values))
        assert tup.size == 1 + len(values)

    @given(
        st.text(alphabet="RST", min_size=1, max_size=2),
        st.lists(st.integers(min_value=0, max_value=5), max_size=4),
    )
    def test_tuple_hash_consistency(self, relation, values):
        first = Tuple(relation, tuple(values))
        second = Tuple(relation, tuple(values))
        assert first == second
        assert hash(first) == hash(second)
