"""Tests for the synthetic workload generators (repro.streams.generators)."""

from repro.cq.hierarchical import is_hierarchical
from repro.streams.generators import (
    HCQWorkloadGenerator,
    SensorStreamGenerator,
    StockStreamGenerator,
    deep_hcq,
    random_stream,
    self_join_hcq,
    star_hcq,
)
from repro.cq.schema import Schema


class TestRandomStream:
    def test_length_and_schema_conformance(self):
        schema = Schema({"R": 2, "T": 1})
        stream = random_stream(schema, 50, domain_size=5, seed=3)
        assert len(stream) == 50
        for tup in stream:
            schema.validate(tup)
            assert all(0 <= v < 5 for v in tup.values)

    def test_deterministic_by_seed(self):
        schema = Schema({"R": 2})
        first = random_stream(schema, 20, seed=7).materialise()
        second = random_stream(schema, 20, seed=7).materialise()
        assert first == second

    def test_relation_weights(self):
        schema = Schema({"R": 1, "T": 1})
        stream = random_stream(schema, 200, seed=1, relation_weights={"R": 10.0, "T": 0.0001})
        relations = [t.relation for t in stream]
        assert relations.count("R") > relations.count("T")


class TestHCQWorkloadGenerator:
    def test_query_is_hierarchical_star(self):
        workload = HCQWorkloadGenerator(arms=4)
        query = workload.query()
        assert len(query) == 4
        assert is_hierarchical(query)

    def test_schema_and_stream(self):
        workload = HCQWorkloadGenerator(arms=3, key_domain=4, seed=2)
        stream = workload.stream(100)
        assert len(stream) == 100
        for tup in stream:
            workload.schema().validate(tup)
            assert 0 <= tup.value(0) < 4

    def test_stream_is_deterministic(self):
        first = HCQWorkloadGenerator(arms=2, seed=9).stream(30).materialise()
        second = HCQWorkloadGenerator(arms=2, seed=9).stream(30).materialise()
        assert first == second

    def test_hot_key_stream_has_skew(self):
        workload = HCQWorkloadGenerator(arms=2, key_domain=50, seed=0)
        stream = workload.hot_key_stream(200, hot_fraction=0.7)
        hot = sum(1 for t in stream if t.value(0) == 0)
        assert hot > 100

    def test_query_produces_matches_on_generated_stream(self):
        from repro.core.evaluation import StreamingEvaluator
        from repro.core.hcq_to_pcea import hcq_to_pcea

        workload = HCQWorkloadGenerator(arms=2, key_domain=2, seed=5)
        evaluator = StreamingEvaluator(hcq_to_pcea(workload.query()), window=50)
        total = sum(len(v) for v in evaluator.run(workload.stream(60)).values())
        assert total > 0


class TestParametricQueries:
    def test_star_hcq(self):
        assert is_hierarchical(star_hcq(5))
        assert len(star_hcq(5)) == 5

    def test_deep_hcq(self):
        query = deep_hcq(4)
        assert is_hierarchical(query)
        assert len(query) == 4
        assert query.atom(3).arity == 4

    def test_self_join_hcq(self):
        query = self_join_hcq(3)
        assert is_hierarchical(query)
        assert query.has_self_joins()
        assert query.relations() == {"R"}


class TestScenarioGenerators:
    def test_stock_generator(self):
        generator = StockStreamGenerator(symbols=5, seed=4)
        stream = generator.stream(100)
        assert len(stream) == 100
        for tup in stream:
            generator.schema().validate(tup)
        assert is_hierarchical(generator.query())

    def test_sensor_generator(self):
        generator = SensorStreamGenerator(sensors=3, seed=4)
        stream = generator.stream(100)
        assert len(stream) == 100
        for tup in stream:
            generator.schema().validate(tup)
        assert is_hierarchical(generator.query())

    def test_scenario_queries_produce_matches(self):
        from repro.baselines.naive import NaiveRecomputeEngine

        generator = SensorStreamGenerator(sensors=2, alarm_probability=0.3, seed=1)
        engine = NaiveRecomputeEngine(generator.query(), window=40)
        total = sum(len(v) for v in engine.run(generator.stream(80)).values())
        assert total > 0
