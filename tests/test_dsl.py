"""Tests for the CER pattern DSL syntax (repro.engine.dsl)."""

import pytest

from repro.engine.dsl import (
    AtomPattern,
    Conjunction,
    Disjunction,
    Sequence,
    atom,
    conjunction,
    disjunction,
    sequence,
)
from repro.cq.query import Atom, Variable


class TestAtomPattern:
    def test_atom_builder(self):
        pattern = atom("Buy", "s", "p")
        assert pattern.relation == "Buy"
        assert pattern.variables == ("s", "p")
        assert pattern.as_atom() == Atom("Buy", (Variable("s"), Variable("p")))

    def test_atom_with_filters(self):
        pattern = atom("Buy", "s", "p", filters=[("p", ">", 100)])
        assert pattern.filters == (("p", ">", 100),)
        assert "p > 100" in str(pattern)

    def test_variable_positions(self):
        pattern = atom("E", "x", "y", "x")
        assert pattern.variable_positions("x") == (0, 2)
        assert pattern.variable_positions("z") == ()

    def test_atoms_iteration(self):
        pattern = atom("Buy", "s")
        assert list(pattern.atoms()) == [pattern]


class TestCombinators:
    def test_conjunction_flattens(self):
        pattern = conjunction(atom("A", "x"), conjunction(atom("B", "x"), atom("C", "x")))
        assert isinstance(pattern, Conjunction)
        assert len(pattern.parts) == 3
        assert [p.relation for p in pattern.atoms()] == ["A", "B", "C"]

    def test_sequence_flattens(self):
        pattern = sequence(atom("A", "x"), sequence(atom("B", "x"), atom("C", "x")))
        assert isinstance(pattern, Sequence)
        assert len(pattern.parts) == 3

    def test_disjunction_flattens(self):
        pattern = disjunction(atom("A", "x"), disjunction(atom("B", "x"), atom("C", "x")))
        assert isinstance(pattern, Disjunction)
        assert len(pattern.parts) == 3

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            conjunction()
        with pytest.raises(ValueError):
            sequence()
        with pytest.raises(ValueError):
            disjunction()

    def test_fluent_methods(self):
        pattern = atom("A", "x").then(atom("B", "x"))
        assert isinstance(pattern, Sequence)
        pattern = atom("A", "x").and_(atom("B", "x"))
        assert isinstance(pattern, Conjunction)
        pattern = atom("A", "x").or_(atom("B", "x"))
        assert isinstance(pattern, Disjunction)

    def test_str_renderings(self):
        assert "AND" in str(conjunction(atom("A", "x"), atom("B", "x")))
        assert ";" in str(sequence(atom("A", "x"), atom("B", "x")))
        assert "OR" in str(disjunction(atom("A", "x"), atom("B", "x")))

    def test_atoms_order_is_left_to_right(self):
        pattern = sequence(conjunction(atom("A", "x"), atom("B", "x")), atom("C", "x"))
        assert [p.relation for p in pattern.atoms()] == ["A", "B", "C"]
