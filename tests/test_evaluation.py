"""Tests for the streaming evaluation algorithm (repro.core.evaluation) — Section 5."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datastructure import DataStructure, LinkedListUnionStructure
from repro.core.evaluation import NotEqualityPredicateError, StreamingEvaluator, evaluate_pcea
from repro.core.hcq_to_pcea import hcq_to_pcea
from repro.core.pcea import PCEA, PCEATransition
from repro.core.predicates import AtomUnaryPredicate, LambdaBinaryPredicate, RelationPredicate
from repro.cq.query import Atom, Variable
from repro.cq.schema import Tuple
from repro.valuation import Valuation

from helpers import (
    QUERY_Q0,
    SIGMA0,
    STREAM_S0,
    example_pcea_p0,
    star_query,
    star_schema,
    streams_strategy,
)

X, Y = Variable("x"), Variable("y")


class TestStreamingEvaluatorBasics:
    def test_example_p0_outputs(self):
        evaluator = StreamingEvaluator(example_pcea_p0(), window=10)
        outputs = {}
        for position, tup in enumerate(STREAM_S0):
            outputs[position] = set(evaluator.process(tup))
        assert outputs[5] == {
            Valuation({"dot": {1, 3, 5}}),
            Valuation({"dot": {0, 1, 5}}),
        }
        assert outputs[0] == set()
        assert outputs[6] == set()

    def test_agrees_with_naive_pcea_on_every_position(self):
        pcea = example_pcea_p0()
        evaluator = StreamingEvaluator(pcea, window=len(STREAM_S0) + 1)
        for position, tup in enumerate(STREAM_S0):
            streaming = set(evaluator.process(tup))
            naive = pcea.output_at(STREAM_S0, position)
            assert streaming == naive

    def test_sliding_window_drops_old_matches(self):
        pcea = example_pcea_p0()
        evaluator = StreamingEvaluator(pcea, window=2)
        results = evaluator.run(STREAM_S0)
        # At position 5 the only match within a window of 2 would need min >= 3;
        # both matches use positions 0/1, so nothing is reported.
        assert results[5] == []

    def test_window_zero_only_same_position_matches(self):
        query = star_query(1)
        pcea = hcq_to_pcea(query)
        evaluator = StreamingEvaluator(pcea, window=0)
        outputs = evaluator.process(Tuple("A1", (1, 2)))
        assert outputs == [Valuation({0: {0}})]

    def test_run_collects_per_position(self):
        evaluator = StreamingEvaluator(example_pcea_p0(), window=10)
        results = evaluator.run(STREAM_S0)
        assert set(results.keys()) == set(range(len(STREAM_S0)))
        assert len(results[5]) == 2

    def test_run_without_collection(self):
        evaluator = StreamingEvaluator(example_pcea_p0(), window=10)
        assert evaluator.run(STREAM_S0, collect=False) == {}
        assert evaluator.position == len(STREAM_S0) - 1

    def test_evaluate_pcea_wrapper(self):
        results = evaluate_pcea(example_pcea_p0(), STREAM_S0, window=10, positions=[5])
        assert set(results.keys()) == {5}
        assert len(results[5]) == 2

    def test_rejects_non_equality_predicates(self):
        unary = RelationPredicate("T")
        arbitrary = LambdaBinaryPredicate(lambda a, b: True)
        pcea = PCEA(
            states={"a", "b"},
            transitions=[
                PCEATransition(set(), unary, {}, {"l"}, "a"),
                PCEATransition({"a"}, unary, {"a": arbitrary}, {"l"}, "b"),
            ],
            final={"b"},
        )
        with pytest.raises(NotEqualityPredicateError):
            StreamingEvaluator(pcea, window=5)

    def test_rejects_mismatched_datastructure_window(self):
        with pytest.raises(ValueError):
            StreamingEvaluator(example_pcea_p0(), window=5, datastructure=DataStructure(7))

    def test_statistics_counters(self):
        evaluator = StreamingEvaluator(example_pcea_p0(), window=10)
        evaluator.run(STREAM_S0)
        stats = evaluator.stats
        # Each P0 transition dispatches on a distinct relation, so the index
        # presents exactly one candidate per tuple (the seed engine scanned
        # all three transitions every time).
        assert stats.transitions_scanned == len(STREAM_S0)
        assert stats.transitions_fired > 0
        assert stats.outputs_enumerated == 2
        assert evaluator.hash_table_size() > 0
        evaluator.reset_statistics()
        assert evaluator.stats.transitions_fired == 0

    def test_audit_mode_detects_duplicates(self):
        """An ambiguous PCEA (same valuation via two runs) trips the audit."""
        unary = AtomUnaryPredicate(Atom("T", (X,)))
        pcea = PCEA(
            states={"a", "b"},
            transitions=[
                PCEATransition(set(), unary, {}, {"l"}, "a"),
                PCEATransition(set(), unary, {}, {"l"}, "b"),
            ],
            final={"a", "b"},
        )
        evaluator = StreamingEvaluator(pcea, window=5, audit=True)
        with pytest.raises(AssertionError):
            evaluator.process(Tuple("T", (1,)))

    def test_linked_list_datastructure_gives_same_outputs(self):
        pcea = example_pcea_p0()
        balanced = StreamingEvaluator(pcea, window=4)
        naive = StreamingEvaluator(pcea, window=4, datastructure=LinkedListUnionStructure(4))
        for tup in STREAM_S0:
            assert set(balanced.process(tup)) == set(naive.process(tup))


class TestStreamingAgainstGroundTruth:
    @settings(max_examples=30, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=9, domain=2), st.integers(min_value=0, max_value=8))
    def test_matches_naive_pcea_with_windows(self, stream, window):
        pcea = hcq_to_pcea(QUERY_Q0)
        evaluator = StreamingEvaluator(pcea, window=window, audit=True)
        for position, tup in enumerate(stream):
            assert set(evaluator.process(tup)) == pcea.output_at(stream, position, window=window)

    @settings(max_examples=20, deadline=None)
    @given(streams_strategy(star_schema(2), max_length=10, domain=2), st.integers(min_value=1, max_value=6))
    def test_star_query_windows(self, stream, window):
        pcea = hcq_to_pcea(star_query(2))
        evaluator = StreamingEvaluator(pcea, window=window, audit=True)
        for position, tup in enumerate(stream):
            assert set(evaluator.process(tup)) == pcea.output_at(stream, position, window=window)

    @settings(max_examples=15, deadline=None)
    @given(streams_strategy(SIGMA0, max_length=10, domain=2))
    def test_example_p0_random_streams(self, stream):
        pcea = example_pcea_p0()
        evaluator = StreamingEvaluator(pcea, window=len(stream) + 1, audit=True)
        for position, tup in enumerate(stream):
            assert set(evaluator.process(tup)) == pcea.output_at(stream, position)


class TestBatchedIngestion:
    """``process_many`` is output-identical to tuple-by-tuple ``process``."""

    @pytest.mark.parametrize("batch_size", [1, 4, 13, 100])
    @pytest.mark.parametrize("seed", [0, 2])
    def test_batched_equals_per_tuple(self, batch_size, seed):
        from repro.streams.generators import random_stream

        stream = random_stream(SIGMA0, length=60, domain_size=3, seed=seed).materialise()
        pcea = hcq_to_pcea(QUERY_Q0)
        batched = StreamingEvaluator(pcea, window=7)
        stepwise = StreamingEvaluator(pcea, window=7)
        batched_outputs = []
        for begin in range(0, len(stream), batch_size):
            batched_outputs.extend(batched.process_many(stream[begin : begin + batch_size]))
        stepwise_outputs = [stepwise.process(tup) for tup in stream]
        assert len(batched_outputs) == len(stepwise_outputs)
        for left, right in zip(batched_outputs, stepwise_outputs):
            assert set(left) == set(right)
        assert batched.position == stepwise.position

    def test_batched_eviction_stays_bounded(self):
        from repro.streams.generators import HCQWorkloadGenerator

        workload = HCQWorkloadGenerator(arms=2, key_domain=5_000, seed=3)
        pcea = hcq_to_pcea(workload.query())
        stream = workload.stream(1_500).materialise()
        window = 32
        evaluator = StreamingEvaluator(pcea, window=window, collect_stats=False)
        max_size = 0
        for begin in range(0, len(stream), 100):
            evaluator.process_many(stream[begin : begin + 100])
            max_size = max(max_size, evaluator.hash_table_size())
        # One sweep per batch: the table may hold up to a batch of extra
        # expired entries mid-batch, but never grows with the stream.
        assert evaluator.evicted > 500
        assert max_size <= 4 * (window + 1) + 4 * 100

    def test_batches_interleave_with_per_tuple_processing(self):
        from repro.streams.generators import random_stream

        stream = random_stream(SIGMA0, length=45, domain_size=3, seed=9).materialise()
        pcea = hcq_to_pcea(QUERY_Q0)
        mixed = StreamingEvaluator(pcea, window=5)
        stepwise = StreamingEvaluator(pcea, window=5)
        mixed_outputs = []
        mixed_outputs.extend(mixed.process_many(stream[:15]))
        for tup in stream[15:30]:
            mixed_outputs.append(mixed.process(tup))
        mixed_outputs.extend(mixed.process_many(stream[30:]))
        stepwise_outputs = [stepwise.process(tup) for tup in stream]
        for left, right in zip(mixed_outputs, stepwise_outputs):
            assert set(left) == set(right)
        assert mixed.hash_table_size() == stepwise.hash_table_size()

    def test_batched_statistics_flushed_once(self):
        stream = STREAM_S0
        counting = StreamingEvaluator(example_pcea_p0(), window=10)
        outputs = counting.process_many(stream)
        total = sum(len(batch) for batch in outputs)
        assert counting.stats.outputs_enumerated == total > 0

    def test_audit_mode_batches_through_checked_path(self):
        evaluator = StreamingEvaluator(example_pcea_p0(), window=10, audit=True)
        outputs = evaluator.process_many(STREAM_S0)
        assert sum(len(batch) for batch in outputs) > 0

    def test_unswept_updates_recovered_by_next_sweeping_update(self):
        # Manual update(sweep=False) calls without a batch sweep must not
        # leak their expiry buckets once sweeping processing resumes.
        pcea = hcq_to_pcea(star_query(2))
        window = 3
        evaluator = StreamingEvaluator(pcea, window=window)
        evaluator.update(Tuple("A1", (1, 0)), sweep=False)
        for _ in range(window + 1):
            evaluator.update(Tuple("B", (0,)), sweep=False)  # unknown relation
        assert evaluator.hash_table_size() > 0
        for _ in range(2):
            evaluator.process(Tuple("B", (0,)))
        assert evaluator.hash_table_size() == 0
        assert not evaluator._expiry_buckets


class TestUpdateCostBehaviour:
    def test_hash_table_keys_are_join_keys(self):
        pcea = hcq_to_pcea(star_query(2))
        evaluator = StreamingEvaluator(pcea, window=100)
        evaluator.process(Tuple("A1", (1, 10)))
        evaluator.process(Tuple("A1", (2, 10)))
        evaluator.process(Tuple("A2", (1, 20)))
        # Entries exist for both join keys of A1 (1 and 2) across the transitions.
        assert evaluator.hash_table_size() >= 2

    def test_update_work_does_not_grow_with_output_history(self):
        """The number of hash operations per tuple depends on |Δ|, not on how many
        outputs have been produced so far (Theorem 5.1's key property)."""
        pcea = hcq_to_pcea(star_query(2))
        evaluator = StreamingEvaluator(pcea, window=10_000)
        per_tuple_ops = []
        for position in range(300):
            relation = "A1" if position % 2 == 0 else "A2"
            before = evaluator.stats.hash_lookups + evaluator.stats.hash_updates
            evaluator.update(Tuple(relation, (0, position)))
            after = evaluator.stats.hash_lookups + evaluator.stats.hash_updates
            per_tuple_ops.append(after - before)
        # Outputs grow quadratically along this stream, but per-tuple hash work is flat.
        assert max(per_tuple_ops) <= 4 * len(pcea.transitions)
