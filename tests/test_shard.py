"""Tests for the sharded multi-process engine (repro.shard).

Five layers:

* frame-protocol units — the length-prefixed pickled frames must round-trip,
  reject torn/corrupted frames, and pin ``pickle.HIGHEST_PROTOCOL``;
* placement units — the policies are deterministic, in-range, and spread;
* lane-subset snapshot units — ``extract_queries``/``adopt_queries`` move a
  query's live state between engines and reject mismatched positions,
  windows, signatures and snapshot kinds before touching anything;
* differentials — a sharded engine (inline shards, real ``fork`` workers,
  and a ``spawn`` run for spawn safety) must produce bit-identical
  per-handle outputs to one shared ``MultiQueryEngine``, including across a
  mid-stream rebalance and across a worker killed with SIGKILL (recovered
  from the coordinator checkpoint + command-log replay, with and without a
  checkpoint ever taken);
* surfaces — ``observe()``/``collect_engine_counters`` expose the shard
  counters, the benchmark schema accepts ``workers``/``scaling``, and the
  CLI ``--workers`` path matches the single-process engine line for line.
"""

import io
import pickle
import random
import subprocess
import sys

import pytest
from hypothesis import given, settings

from repro.bench.harness import collect_engine_counters, validate_benchmark_payload
from repro.cli import build_multi_parser, run_multi
from repro.cq.query import parse_query
from repro.cq.schema import Tuple
from repro.multi.engine import MultiQueryEngine
from repro.runtime import SnapshotError
from repro.runtime.snapshot import PARTIAL_SNAPSHOT_KIND, SNAPSHOT_VERSION
from repro.shard import (
    FrameChannel,
    FrameProtocolError,
    HashPlacement,
    LeastLoadedPlacement,
    PICKLE_PROTOCOL,
    PlacementPolicy,
    RoundRobinPlacement,
    ShardedEngine,
    ShardError,
    ShardWorker,
    WorkerDied,
    decode_frame,
    encode_frame,
)

from helpers import SIGMA0, streams_strategy


QUERIES = [
    ("Q0(x, y) <- T(x), S(x, y), R(x, y)", 6),
    ("QA(x, y) <- T(x), R(x, y)", 4),
    ("QB(x, y) <- S(x, y), R(x, y)", 5),
    ("QC(x) <- T(x)", 3),
]


def sigma0_stream(length, seed, domain=3):
    """A deterministic σ0 stream with a small domain (many joins)."""
    rng = random.Random(seed)
    relations = [("T", 1), ("S", 2), ("R", 2)]
    return [
        Tuple(name, tuple(rng.randrange(domain) for _ in range(arity)))
        for name, arity in (rng.choice(relations) for _ in range(length))
    ]


def reference_engine(queries=QUERIES):
    engine = MultiQueryEngine()
    handles = [
        engine.register(parse_query(text), window=window)
        for text, window in queries
    ]
    return engine, handles


def sharded_engine(workers, queries=QUERIES, **kwargs):
    kwargs.setdefault("start_method", "inline")
    engine = ShardedEngine(workers, **kwargs)
    handles = engine.register_many(
        [(parse_query(text), window) for text, window in queries]
    )
    return engine, handles


def canonical(per_position_outputs):
    """Order-insensitive form of a list of per-position output dicts."""
    return sorted(
        (position, qid, sorted(map(str, valuations)))
        for position, outputs in enumerate(per_position_outputs)
        for qid, valuations in outputs.items()
    )


def run_batches(engine, stream, batch_size=16, hook=None):
    """Feed ``stream`` in batches, calling ``hook(position)`` between them."""
    outputs = []
    for start in range(0, len(stream), batch_size):
        outputs.extend(engine.process_many(stream[start : start + batch_size]))
        if hook is not None:
            hook(engine.position)
    return outputs


# ------------------------------------------------------------------- frames
class TestFrames:
    MESSAGES = [
        ("ping",),
        ("batch", [Tuple("S", (2, 11)), Tuple("T", (1,))]),
        ("register", 3, "q3", 100, "Q(x) <- T(x)"),
        ("matches", 7, [(0, 3, [])], 0.25),
        ("snapshot", {"snapshot_version": 1, "buckets": {9: [0, (1, 2), 5]}}, [0, 2]),
    ]

    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: m[0])
    def test_roundtrip(self, message):
        assert decode_frame(encode_frame(message)) == message

    def test_protocol_is_highest(self):
        # The spawn-safety satellite pins HIGHEST_PROTOCOL; the second byte
        # of a pickled stream is the protocol number of the PROTO opcode.
        assert PICKLE_PROTOCOL == pickle.HIGHEST_PROTOCOL
        frame = encode_frame(("ping",))
        assert frame[4] == 0x80  # PROTO opcode
        assert frame[5] == pickle.HIGHEST_PROTOCOL

    def test_length_prefix_matches_body(self):
        frame = encode_frame(("ping",))
        assert int.from_bytes(frame[:4], "big") == len(frame) - 4

    def test_truncated_frame_rejected(self):
        frame = encode_frame(("ping",))
        with pytest.raises(FrameProtocolError, match="length prefix"):
            decode_frame(frame[:-1])

    def test_short_frame_rejected(self):
        with pytest.raises(FrameProtocolError, match="shorter than"):
            decode_frame(b"\x00\x01")

    def test_corrupted_prefix_rejected(self):
        frame = encode_frame(("ping",))
        with pytest.raises(FrameProtocolError, match="length prefix"):
            decode_frame(b"\xff\xff\xff\xff" + frame[4:])

    def test_garbage_body_rejected(self):
        body = b"not a pickle"
        frame = len(body).to_bytes(4, "big") + body
        with pytest.raises(FrameProtocolError, match="unpickle"):
            decode_frame(frame)

    def test_unpicklable_message_rejected(self):
        with pytest.raises(FrameProtocolError, match="not picklable"):
            encode_frame(("call", lambda: None))

    def test_channel_counts_frames_and_bytes(self):
        import multiprocessing

        left, right = multiprocessing.Pipe()
        a, b = FrameChannel(left), FrameChannel(right)
        a.send(("ping", 123))
        assert b.recv() == ("ping", 123)
        assert a.frames_sent == 1 and a.bytes_sent > 4
        assert b.frames_received == 1 and b.bytes_received == a.bytes_sent
        b.close()
        with pytest.raises(WorkerDied):
            a.send(("ping",))
        a.close()


# ---------------------------------------------------------------- placement
class TestPlacement:
    def _handles(self, count):
        engine, handles = reference_engine(
            [(QUERIES[0][0], 10)] * 1
        )
        # Synthetic handles are enough for placement (only .id matters).
        from repro.multi.registry import QueryHandle

        return [QueryHandle(i, f"q{i}", 10) for i in range(count)]

    def test_hash_placement_deterministic_and_in_range(self):
        policy = HashPlacement()
        for handle in self._handles(64):
            index = policy.assign(handle, 4, [0, 0, 0, 0])
            assert 0 <= index < 4
            assert index == policy.assign(handle, 4, [99, 0, 0, 0])

    def test_hash_placement_spreads_consecutive_ids(self):
        policy = HashPlacement()
        hit = {policy.assign(handle, 4, [0] * 4) for handle in self._handles(64)}
        assert hit == {0, 1, 2, 3}

    def test_round_robin_cycles(self):
        policy = RoundRobinPlacement()
        assigned = [policy.assign(h, 3, [0] * 3) for h in self._handles(7)]
        assert assigned == [0, 1, 2, 0, 1, 2, 0]

    def test_least_loaded_picks_min_breaking_ties_low(self):
        policy = LeastLoadedPlacement()
        (handle,) = self._handles(1)
        assert policy.assign(handle, 3, [2, 1, 1]) == 1
        assert policy.assign(handle, 3, [0, 0, 0]) == 0

    def test_out_of_range_placement_rejected(self):
        class Bad(PlacementPolicy):
            def assign(self, handle, shards, loads):
                return shards  # one past the end

        with ShardedEngine(2, start_method="inline", placement=Bad()) as engine:
            with pytest.raises(ValueError, match="placed"):
                engine.register(parse_query(QUERIES[0][0]), window=5)
            assert engine.handles() == []  # registry rolled back


# ------------------------------------------------- extract / adopt (multi)
class TestLaneSubsetSnapshots:
    def _pair(self, stream_length=60, seed=5):
        source, s_handles = reference_engine()
        target, t_handles = reference_engine(QUERIES[:2])
        stream = sigma0_stream(stream_length, seed)
        for engine in (source, target):
            engine.process_many(stream)
        return source, s_handles, target, t_handles, stream

    def test_extract_is_non_destructive(self):
        source, handles, _, _, _ = self._pair()
        before = source.hash_table_size()
        partial = source.extract_queries(handles[1:3])
        assert source.hash_table_size() == before
        assert partial["kind"] == PARTIAL_SNAPSHOT_KIND
        assert partial["snapshot_version"] == SNAPSHOT_VERSION
        assert len(partial["lanes"]) == 2

    def test_migration_continues_bit_identically(self):
        reference, ref_handles = reference_engine()
        moved = QUERIES[1]
        left, l_handles = reference_engine()
        right = MultiQueryEngine()
        stream = sigma0_stream(120, seed=9)
        ref_out = [reference.process_many(stream[:60]), reference.process_many(stream[60:])]
        left.process_many(stream[:60])
        right.process_many(stream[:60])
        # Move QUERIES[1] from left to right at position 59.
        partial = left.extract_queries([l_handles[1]])
        left.unregister(l_handles[1])
        r_handle = right.register(parse_query(moved[0]), window=moved[1])
        right.adopt_queries(partial, [r_handle])
        l_tail = left.process_many(stream[60:])
        r_tail = right.process_many(stream[60:])
        want = [out.get(ref_handles[1].id, []) for out in ref_out[1]]
        got = [out.get(r_handle.id, []) for out in r_tail]
        assert [sorted(map(str, v)) for v in got] == [sorted(map(str, v)) for v in want]
        # The queries left behind are untouched by the extraction.
        for keep in (0, 2, 3):
            want = [out.get(ref_handles[keep].id, []) for out in ref_out[1]]
            got = [out.get(l_handles[keep].id, []) for out in l_tail]
            assert [sorted(map(str, v)) for v in got] == [
                sorted(map(str, v)) for v in want
            ]

    def test_adopt_rejects_position_mismatch(self):
        source, s_handles, target, t_handles, stream = self._pair()
        target.process_many(sigma0_stream(5, seed=99))
        partial = source.extract_queries([s_handles[3]])
        handle = target.register(parse_query(QUERIES[3][0]), window=QUERIES[3][1])
        with pytest.raises(SnapshotError, match="position"):
            target.adopt_queries(partial, [handle])

    def test_adopt_rejects_wrong_handle_count(self):
        source, s_handles, target, t_handles, _ = self._pair()
        partial = source.extract_queries([s_handles[2], s_handles[3]])
        handle = target.register(parse_query(QUERIES[2][0]), window=QUERIES[2][1])
        with pytest.raises(SnapshotError, match="2"):
            target.adopt_queries(partial, [handle])

    def test_adopt_rejects_window_mismatch(self):
        source, s_handles, target, _, _ = self._pair()
        partial = source.extract_queries([s_handles[3]])
        handle = target.register(parse_query(QUERIES[3][0]), window=QUERIES[3][1] + 1)
        with pytest.raises(SnapshotError, match="window"):
            target.adopt_queries(partial, [handle])

    def test_adopt_rejects_different_query(self):
        source, s_handles, target, _, _ = self._pair()
        partial = source.extract_queries([s_handles[0]])
        # Same window as QUERIES[0], structurally different query.
        handle = target.register(parse_query(QUERIES[1][0]), window=QUERIES[0][1])
        with pytest.raises(SnapshotError, match="signature|query"):
            target.adopt_queries(partial, [handle])

    def test_adopt_rejects_full_snapshot(self):
        source, s_handles, target, _, _ = self._pair()
        handle = target.register(parse_query(QUERIES[3][0]), window=QUERIES[3][1])
        with pytest.raises(SnapshotError, match=PARTIAL_SNAPSHOT_KIND):
            target.adopt_queries(source.snapshot(), [handle])

    def test_extract_rejects_stale_handle(self):
        source, s_handles, _, _, _ = self._pair()
        source.unregister(s_handles[2])
        with pytest.raises(KeyError):
            source.extract_queries([s_handles[2]])


# ------------------------------------------------------------- differentials
class TestShardedDifferential:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_inline_matches_single_engine(self, workers):
        reference, _ = reference_engine()
        stream = sigma0_stream(150, seed=workers)
        with sharded_engine(workers)[0] as sharded:
            assert canonical(run_batches(sharded, stream)) == canonical(
                run_batches(reference, stream)
            )
            assert sharded.position == reference.position

    @settings(max_examples=25, deadline=None)
    @given(stream=streams_strategy(SIGMA0, max_length=24))
    def test_inline_hypothesis_streams(self, stream):
        reference, _ = reference_engine(QUERIES[:2])
        with sharded_engine(2, QUERIES[:2])[0] as sharded:
            assert canonical(run_batches(sharded, stream, batch_size=7)) == canonical(
                run_batches(reference, stream, batch_size=7)
            )

    def test_single_tuple_process(self):
        reference, _ = reference_engine()
        stream = sigma0_stream(40, seed=11)
        with sharded_engine(2)[0] as sharded:
            for event in stream:
                want = reference.process(event)
                got = sharded.process(event)
                assert canonical([got]) == canonical([want])

    def test_fork_processes_match_single_engine(self):
        reference, _ = reference_engine()
        stream = sigma0_stream(150, seed=21)
        with sharded_engine(2, start_method="fork")[0] as sharded:
            assert canonical(run_batches(sharded, stream)) == canonical(
                run_batches(reference, stream)
            )

    def test_spawn_processes_match_single_engine(self):
        # The spawn-safety satellite: children import repro fresh, nothing
        # is inherited from this process.
        reference, _ = reference_engine(QUERIES[:2])
        stream = sigma0_stream(60, seed=31)
        with sharded_engine(2, QUERIES[:2], start_method="spawn")[0] as sharded:
            assert canonical(run_batches(sharded, stream, batch_size=30)) == canonical(
                run_batches(reference, stream, batch_size=30)
            )

    def test_register_and_unregister_mid_stream(self):
        reference, ref_handles = reference_engine(QUERIES[:3])
        stream = sigma0_stream(120, seed=41)
        with sharded_engine(2, QUERIES[:3])[0] as sharded:
            a = run_batches(sharded, stream[:60])
            b = run_batches(reference, stream[:60])
            sharded.unregister(sharded.handles()[1])
            reference.unregister(ref_handles[1])
            h_new = sharded.register(parse_query(QUERIES[3][0]), window=QUERIES[3][1])
            r_new = reference.register(parse_query(QUERIES[3][0]), window=QUERIES[3][1])
            assert h_new.id == r_new.id  # same global id allocation
            a += run_batches(sharded, stream[60:])
            b += run_batches(reference, stream[60:])
            assert canonical(a) == canonical(b)

    def test_double_unregister_rejected(self):
        with sharded_engine(2)[0] as sharded:
            handle = sharded.handles()[0]
            sharded.unregister(handle)
            with pytest.raises(KeyError):
                sharded.unregister(handle)

    def test_unknown_command_is_error_reply_not_crash(self):
        worker = ShardWorker()
        with pytest.raises(ValueError, match="unknown shard command"):
            worker.handle(("made_up",))


# --------------------------------------------------------------- rebalancing
class TestRebalance:
    def test_rebalance_mid_stream_is_lossless(self):
        reference, ref_handles = reference_engine()
        stream = sigma0_stream(200, seed=51)
        with sharded_engine(3)[0] as sharded:
            handles = sharded.handles()
            moves = iter([(handles[0], 2), (handles[2], 0), (handles[0], 1)])

            def hook(position):
                move = next(moves, None)
                if move is not None:
                    sharded.rebalance(*move)

            got = run_batches(sharded, stream, batch_size=40, hook=hook)
            want = run_batches(reference, stream, batch_size=40)
            assert canonical(got) == canonical(want)
            assert sharded.rebalances == 3

    def test_rebalance_to_same_shard_is_noop(self):
        with sharded_engine(2)[0] as sharded:
            handle = sharded.handles()[0]
            source = sharded.assignment()[handle.id]
            sharded.rebalance(handle, source)
            assert sharded.rebalances == 0

    def test_rebalance_stale_handle_rejected(self):
        with sharded_engine(2)[0] as sharded:
            handle = sharded.handles()[0]
            sharded.unregister(handle)
            with pytest.raises(KeyError):
                sharded.rebalance(handle, 1)

    def test_rebalance_bad_target_rejected(self):
        with sharded_engine(2)[0] as sharded:
            with pytest.raises(ValueError, match="out of range"):
                sharded.rebalance(sharded.handles()[0], 5)

    def test_rebalance_updates_assignment_and_rosters(self):
        with sharded_engine(2)[0] as sharded:
            handle = sharded.handles()[0]
            source = sharded.assignment()[handle.id]
            target = 1 - source
            sharded.rebalance(handle, target)
            assert sharded.assignment()[handle.id] == target
            observed = sharded.observe()["shard"]["per_shard"]
            assert observed[target]["queries"] == sum(
                1 for s in sharded.assignment().values() if s == target
            )


# ------------------------------------------------------------------ recovery
class TestRecovery:
    def test_inline_death_with_checkpoints(self):
        reference, _ = reference_engine()
        stream = sigma0_stream(200, seed=61)
        with sharded_engine(3, checkpoint_interval=50)[0] as sharded:
            killed = []

            def hook(position):
                if not killed and position >= 80:
                    sharded._shards[1].channel.dead = True
                    killed.append(position)

            got = run_batches(sharded, stream, batch_size=40, hook=hook)
            want = run_batches(reference, stream, batch_size=40)
            assert canonical(got) == canonical(want)
            assert sharded.recoveries == 1
            assert sharded.checkpoints_taken >= 2

    def test_inline_death_without_any_checkpoint(self):
        reference, _ = reference_engine()
        stream = sigma0_stream(120, seed=71)
        with sharded_engine(2)[0] as sharded:
            done = []

            def hook(position):
                if not done:
                    sharded._shards[0].channel.dead = True
                    done.append(True)

            got = run_batches(sharded, stream, batch_size=30, hook=hook)
            want = run_batches(reference, stream, batch_size=30)
            assert canonical(got) == canonical(want)
            assert sharded.recoveries == 1

    def test_sigkilled_fork_worker_recovers_exactly(self):
        reference, _ = reference_engine()
        stream = sigma0_stream(160, seed=81)
        with sharded_engine(
            2, start_method="fork", checkpoint_interval=60
        )[0] as sharded:
            killed = []

            def hook(position):
                if not killed and position >= 80:
                    sharded._shards[1].process.kill()
                    sharded._shards[1].process.join()
                    killed.append(position)

            got = run_batches(sharded, stream, batch_size=40, hook=hook)
            want = run_batches(reference, stream, batch_size=40)
            assert canonical(got) == canonical(want)
            assert sharded.recoveries == 1

    def test_death_after_rebalance_replays_the_move(self):
        reference, _ = reference_engine()
        stream = sigma0_stream(160, seed=91)
        with sharded_engine(2, checkpoint_interval=60)[0] as sharded:
            handle = sharded.handles()[0]
            steps = iter(range(100))

            def hook(position):
                step = next(steps)
                if step == 0:
                    target = 1 - sharded.assignment()[handle.id]
                    sharded.rebalance(handle, target)
                elif step == 1:
                    # Kill the shard that adopted the moved query: replay
                    # must re-apply the adopt from the command log.
                    sharded._shards[sharded.assignment()[handle.id]].channel.dead = True

            got = run_batches(sharded, stream, batch_size=40, hook=hook)
            want = run_batches(reference, stream, batch_size=40)
            assert canonical(got) == canonical(want)
            assert sharded.recoveries == 1 and sharded.rebalances == 1


# ------------------------------------------------------------------ surfaces
class TestSurfaces:
    def test_observe_shape_and_shard_section(self):
        reference, _ = reference_engine()
        stream = sigma0_stream(80, seed=3)
        with sharded_engine(2)[0] as sharded:
            run_batches(sharded, stream)
            run_batches(reference, stream)
            observed = sharded.observe()
            for key in ("position", "hash_entries", "evicted", "stats", "dispatch",
                        "fanout", "memory", "kernel", "shard"):
                assert key in observed
            assert observed["position"] == reference.position
            assert observed["hash_entries"] == reference.hash_table_size()
            assert observed["evicted"] == reference.evicted
            shard = observed["shard"]
            assert shard["workers"] == 2
            assert shard["batches"] == len(range(0, 80, 16))
            assert shard["frames_sent"] > 0 and shard["bytes_sent"] > 0
            assert len(shard["per_shard"]) == 2
            # Aggregated stats equal the single engine's work counters.
            ref_observed = reference.observe()
            for field in ("transitions_fired", "hash_updates", "outputs_enumerated",
                          "tuples_processed"):
                assert observed["stats"][field] == ref_observed["stats"][field]

    def test_collect_engine_counters_flattens_shard_counters(self):
        with sharded_engine(2)[0] as sharded:
            run_batches(sharded, sigma0_stream(40, seed=4))
            counters = collect_engine_counters(sharded)
            assert counters["shard_workers"] == 2.0
            assert counters["shard_batches"] == 3.0
            assert "shard_fan_in_matches" in counters
            assert "shard_rebalances" in counters
            assert "hash_table_size" in counters  # the standard keys survive

    def test_stats_property_aggregates(self):
        reference, _ = reference_engine()
        stream = sigma0_stream(60, seed=6)
        with sharded_engine(3)[0] as sharded:
            run_batches(sharded, stream)
            run_batches(reference, stream)
            assert sharded.stats.tuples_processed == reference.stats.tuples_processed
            assert sharded.stats.transitions_fired == reference.stats.transitions_fired
            assert sharded.hash_table_size() == reference.hash_table_size()
            assert sharded.evicted == reference.evicted

    def test_observer_counts_shard_batches_and_rebalances(self):
        from repro.obs import Observer

        observer = Observer()
        with sharded_engine(2)[0] as sharded:
            sharded.attach_observer(observer)
            run_batches(sharded, sigma0_stream(40, seed=7))
            handle = sharded.handles()[0]
            sharded.rebalance(handle, 1 - sharded.assignment()[handle.id])
            collected = observer.collect()
            assert collected["repro_shard_batches_total"] == 3
            assert collected["repro_shard_rebalances_total"] == 1
            assert collected["repro_shard_workers"] == 2
            sharded.detach_observer()

    def test_payload_schema_accepts_workers_and_scaling(self):
        validate_benchmark_payload(
            {
                "benchmark": "sharding",
                "workers": 4,
                "scaling": [{"workers": 1, "rate": 10.0}, {"workers": 2, "rate": 19.0}],
                "summary": {"speedup": 1.9},
            }
        )

    @pytest.mark.parametrize(
        "payload, match",
        [
            ({"benchmark": "b", "summary": {}, "workers": 0}, "workers"),
            ({"benchmark": "b", "summary": {}, "workers": True}, "workers"),
            ({"benchmark": "b", "summary": {}, "scaling": []}, "scaling"),
            ({"benchmark": "b", "summary": {}, "scaling": [3]}, "mappings"),
            ({"benchmark": "b", "summary": {}, "scaling": [{"rate": 1.0}]}, "workers"),
        ],
    )
    def test_payload_schema_rejections(self, payload, match):
        with pytest.raises(ValueError, match=match):
            validate_benchmark_payload(payload)

    def test_worker_module_has_main_guard(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.shard.worker"],
            capture_output=True,
            text=True,
        )
        assert result.returncode != 0
        assert "multiprocessing entry point" in result.stderr


# ------------------------------------------------------------------ CLI
class TestCli:
    EVENTS = "".join(
        f"{event.relation},{','.join(map(str, event.values))}\n"
        for event in sigma0_stream(200, seed=12)
    )

    def _run(self, argv):
        from repro.cli import read_events

        parser = build_multi_parser()
        args = parser.parse_args(argv)
        output = io.StringIO()
        code = run_multi(args, list(read_events(self.EVENTS.splitlines())), output)
        return code, output.getvalue()

    BASE = [
        "--query", QUERIES[0][0], "--query", QUERIES[1][0],
        "--window", "6", "--window", "4",
    ]

    def test_workers_output_matches_single_process(self):
        code_single, out_single = self._run(self.BASE + ["--batch-size", "32"])
        code_sharded, out_sharded = self._run(
            self.BASE + ["--workers", "2", "--start-method", "inline", "--stats"]
        )
        assert code_single == 0 and code_sharded == 0
        single = sorted(l for l in out_single.splitlines() if not l.startswith("#"))
        sharded = sorted(l for l in out_sharded.splitlines() if not l.startswith("#"))
        assert single == sharded
        assert any(l.startswith("# shard: workers=2") for l in out_sharded.splitlines())

    def test_workers_rejects_no_arena(self):
        code, _ = self._run(self.BASE + ["--workers", "2", "--no-arena"])
        assert code == 2

    def test_workers_rejects_checkpoint_flags(self):
        code, _ = self._run(self.BASE + ["--workers", "2", "--checkpoint", "/tmp/x"])
        assert code == 2
        code, _ = self._run(self.BASE + ["--workers", "2", "--restore", "/tmp/x"])
        assert code == 2

    def test_workers_rejects_trace(self):
        code, _ = self._run(self.BASE + ["--workers", "2", "--trace", "/tmp/x.jsonl"])
        assert code == 2
