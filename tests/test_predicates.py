"""Tests for unary and binary predicates (repro.core.predicates)."""

import pytest

from repro.core.predicates import (
    AtomJoinEquality,
    AtomUnaryPredicate,
    AttributeFilter,
    LambdaBinaryPredicate,
    LambdaUnaryPredicate,
    ProjectionEquality,
    RelationPredicate,
    SelfJoinEquality,
    SelfJoinUnaryPredicate,
    TrueEquality,
    TruePredicate,
    VariableAtomEquality,
    unify_self_join_atoms,
)
from repro.cq.query import Atom, Variable
from repro.cq.schema import Tuple

X, Y, Z, V = Variable("x"), Variable("y"), Variable("z"), Variable("v")


class TestUnaryPredicates:
    def test_true_predicate(self):
        assert TruePredicate().holds(Tuple("Anything", (1,)))

    def test_relation_predicate(self):
        pred = RelationPredicate("T")
        assert pred.holds(Tuple("T", (1,)))
        assert not pred.holds(Tuple("S", (1, 2)))
        multi = RelationPredicate({"R", "S"})
        assert multi.holds(Tuple("R", (1, 2)))
        assert multi.holds(Tuple("S", (1, 2)))

    def test_atom_unary_predicate(self):
        pred = AtomUnaryPredicate(Atom("S", (X, X)))
        assert pred.holds(Tuple("S", (3, 3)))
        assert not pred.holds(Tuple("S", (3, 4)))
        assert not pred.holds(Tuple("R", (3, 3)))

    def test_atom_unary_predicate_with_constant(self):
        pred = AtomUnaryPredicate(Atom("S", (2, Y)))
        assert pred.holds(Tuple("S", (2, 9)))
        assert not pred.holds(Tuple("S", (3, 9)))

    def test_lambda_unary(self):
        pred = LambdaUnaryPredicate(lambda t: t.value(0) > 5, "gt5")
        assert pred.holds(Tuple("T", (6,)))
        assert not pred.holds(Tuple("T", (5,)))
        assert str(pred) == "gt5"

    def test_combinators(self):
        conj = RelationPredicate("T") & LambdaUnaryPredicate(lambda t: t.value(0) > 5)
        assert conj.holds(Tuple("T", (6,)))
        assert not conj.holds(Tuple("T", (3,)))
        disj = RelationPredicate("T") | RelationPredicate("S")
        assert disj.holds(Tuple("S", (1, 2)))

    def test_attribute_filter(self):
        pred = AttributeFilter("Buy", 1, ">", 100)
        assert pred.holds(Tuple("Buy", (7, 150)))
        assert not pred.holds(Tuple("Buy", (7, 50)))
        assert not pred.holds(Tuple("Sell", (7, 150)))
        assert not pred.holds(Tuple("Buy", (7,)))

    def test_attribute_filter_type_mismatch_is_false(self):
        pred = AttributeFilter("Buy", 0, "<", 10)
        assert not pred.holds(Tuple("Buy", ("not-a-number", 1)))


class TestEqualityPredicates:
    def test_true_equality(self):
        eq = TrueEquality()
        assert eq.holds(Tuple("A", (1,)), Tuple("B", (2, 3)))
        assert eq.left_key(Tuple("A", (1,))) == ()

    def test_projection_equality(self):
        eq = ProjectionEquality({"T": (0,)}, {"S": (0,)})
        assert eq.holds(Tuple("T", (2,)), Tuple("S", (2, 11)))
        assert not eq.holds(Tuple("T", (3,)), Tuple("S", (2, 11)))
        assert eq.left_key(Tuple("S", (2, 11))) is None  # S is not a left relation
        assert eq.right_key(Tuple("T", (2,))) is None

    def test_projection_equality_out_of_range_positions(self):
        eq = ProjectionEquality({"T": (5,)}, {"S": (0,)})
        assert eq.left_key(Tuple("T", (2,))) is None

    def test_atom_join_equality_shared_variables(self):
        eq = AtomJoinEquality(Atom("S", (X, Y)), Atom("R", (X, Y)))
        assert eq.holds(Tuple("S", (2, 11)), Tuple("R", (2, 11)))
        assert not eq.holds(Tuple("S", (2, 11)), Tuple("R", (2, 12)))
        assert not eq.holds(Tuple("S", (2, 11)), Tuple("S", (2, 11)))  # wrong relation on the right

    def test_atom_join_equality_without_shared_variables(self):
        eq = AtomJoinEquality(Atom("T", (X,)), Atom("U", (Y,)))
        assert eq.holds(Tuple("T", (1,)), Tuple("U", (2,)))

    def test_atom_join_equality_respects_left_atom_structure(self):
        eq = AtomJoinEquality(Atom("S", (X, X)), Atom("R", (X, Y)))
        assert not eq.holds(Tuple("S", (1, 2)), Tuple("R", (1, 5)))
        assert eq.holds(Tuple("S", (1, 1)), Tuple("R", (1, 5)))

    def test_variable_atom_equality(self):
        # Atoms below the q-tree variable y of Q0: S(x,y) and R(x,y); target T(x).
        eq = VariableAtomEquality([Atom("S", (X, Y)), Atom("R", (X, Y))], Atom("T", (X,)))
        assert eq.holds(Tuple("S", (2, 11)), Tuple("T", (2,)))
        assert eq.holds(Tuple("R", (2, 11)), Tuple("T", (2,)))
        assert not eq.holds(Tuple("R", (3, 11)), Tuple("T", (2,)))
        assert eq.left_key(Tuple("T", (2,))) is None

    def test_variable_atom_equality_rejects_inconsistent_shared_sets(self):
        with pytest.raises(ValueError):
            VariableAtomEquality([Atom("S", (X, Y)), Atom("R", (Z, V))], Atom("T", (X,)))

    def test_lambda_binary(self):
        pred = LambdaBinaryPredicate(lambda a, b: a.value(0) < b.value(0))
        assert pred.holds(Tuple("T", (1,)), Tuple("T", (2,)))
        assert not pred.holds(Tuple("T", (2,)), Tuple("T", (1,)))


class TestSelfJoinPredicates:
    def test_unify_self_join_atoms_merges_classes(self):
        unified = unify_self_join_atoms([Atom("R", (X, Y, Z)), Atom("R", (X, Y, V))])
        # Positions 0 and 1 keep separate classes, position 2 is its own class.
        tup_ok = Tuple("R", (1, 2, 3))
        assert unified.matches(tup_ok)

    def test_unify_repeated_variable_within_atom(self):
        unified = unify_self_join_atoms([Atom("R", (X, X))])
        assert unified.matches(Tuple("R", (4, 4)))
        assert not unified.matches(Tuple("R", (4, 5)))

    def test_unify_cross_atom_equalities(self):
        # R(x, y) and R(y, x) force both positions equal.
        unified = unify_self_join_atoms([Atom("R", (X, Y)), Atom("R", (Y, X))])
        assert unified.matches(Tuple("R", (7, 7)))
        assert not unified.matches(Tuple("R", (7, 8)))

    def test_unify_with_constants(self):
        unified = unify_self_join_atoms([Atom("R", (2, Y)), Atom("R", (X, 3))])
        assert unified.matches(Tuple("R", (2, 3)))
        assert not unified.matches(Tuple("R", (2, 4)))

    def test_unify_with_conflicting_constants_is_unsatisfiable(self):
        unified = unify_self_join_atoms([Atom("R", (2, Y)), Atom("R", (3, Y))])
        assert not unified.matches(Tuple("R", (2, 5)))
        assert not unified.matches(Tuple("R", (3, 5)))

    def test_unify_requires_same_relation(self):
        with pytest.raises(ValueError):
            unify_self_join_atoms([Atom("R", (X,)), Atom("S", (X,))])
        with pytest.raises(ValueError):
            unify_self_join_atoms([])

    def test_self_join_unary_predicate(self):
        pred = SelfJoinUnaryPredicate([Atom("R", (X, Y, Z)), Atom("R", (X, Y, V))])
        assert pred.holds(Tuple("R", (1, 2, 3)))
        assert not pred.holds(Tuple("S", (1, 2, 3)))

    def test_self_join_equality_on_shared_variables(self):
        left = [Atom("R", (X, Y, Z))]
        right = [Atom("U", (X, Y))]
        eq = SelfJoinEquality(left, right)
        assert eq.holds(Tuple("R", (1, 2, 9)), Tuple("U", (1, 2)))
        assert not eq.holds(Tuple("R", (1, 2, 9)), Tuple("U", (1, 3)))

    def test_self_join_equality_group_vs_group(self):
        eq = SelfJoinEquality([Atom("R", (X, Y, Z)), Atom("R", (X, Y, V))], [Atom("U", (X, Y))])
        assert eq.holds(Tuple("R", (1, 2, 3)), Tuple("U", (1, 2)))
        assert not eq.holds(Tuple("R", (1, 2, 3)), Tuple("U", (2, 2)))

    def test_self_join_equality_requires_matching_unified_atom(self):
        eq = SelfJoinEquality([Atom("R", (X, X))], [Atom("U", (X,))])
        assert eq.left_key(Tuple("R", (1, 2))) is None
        assert eq.left_key(Tuple("R", (1, 1))) == (1,)


class TestCanonicalKeys:
    """Equal canonical keys must imply equal extensions (memoisation soundness)."""

    def test_structural_predicates_share_keys(self):
        assert TruePredicate().canonical_key() == TruePredicate().canonical_key()
        assert (
            RelationPredicate({"T", "S"}).canonical_key()
            == RelationPredicate({"S", "T"}).canonical_key()
        )
        assert (
            AtomUnaryPredicate(Atom("S", (X, Y))).canonical_key()
            == AtomUnaryPredicate(Atom("S", (X, Y))).canonical_key()
        )
        assert (
            AttributeFilter("R", 0, ">", 5).canonical_key()
            == AttributeFilter("R", 0, ">", 5).canonical_key()
        )

    def test_distinct_predicates_get_distinct_keys(self):
        assert (
            AttributeFilter("R", 0, ">", 5).canonical_key()
            != AttributeFilter("R", 0, ">", 6).canonical_key()
        )
        assert (
            AttributeFilter("R", 0, ">", 5).canonical_key()
            != AttributeFilter("R", 0, ">=", 5).canonical_key()
        )
        assert (
            AtomUnaryPredicate(Atom("S", (X, Y))).canonical_key()
            != AtomUnaryPredicate(Atom("S", (X, X))).canonical_key()
        )

    def test_lambda_shares_only_same_callable(self):
        func = lambda t: True  # noqa: E731
        assert (
            LambdaUnaryPredicate(func).canonical_key()
            == LambdaUnaryPredicate(func, description="other").canonical_key()
        )
        assert (
            LambdaUnaryPredicate(func).canonical_key()
            != LambdaUnaryPredicate(lambda t: True).canonical_key()
        )

    def test_default_key_is_identity_based(self):
        class Opaque(TruePredicate):
            def canonical_key(self):
                return super(TruePredicate, self).canonical_key()

        a, b = Opaque(), Opaque()
        assert a.canonical_key() == a.canonical_key()
        assert a.canonical_key() != b.canonical_key()

    def test_compiled_filtered_unary_keys(self):
        from repro.engine.compiler import compile_pattern
        from repro.engine.dsl import atom, conjunction

        def transitions(threshold):
            pattern = conjunction(
                atom("S", "x", "y", filters=[("y", "<", threshold)]),
                atom("R", "x", "y"),
            )
            return compile_pattern(pattern).dispatch_index().all_transitions()

        same = {c.pred_key for c in transitions(5)} & {c.pred_key for c in transitions(5)}
        assert same  # shared groups across two compilations of the same pattern
        # The filtered S-transitions differ between thresholds.
        filtered_5 = [c for c in transitions(5) if "<" in str(c.unary)]
        filtered_6 = [c for c in transitions(6) if "<" in str(c.unary)]
        assert filtered_5 and filtered_6
        assert {c.pred_key for c in filtered_5}.isdisjoint(
            {c.pred_key for c in filtered_6}
        )


class TestConstantGuards:
    def test_equality_filter_guards(self):
        assert AttributeFilter("R", 1, "==", 7).constant_guard() == (1, 7)
        assert AttributeFilter("R", 1, ">", 7).constant_guard() is None
        assert AttributeFilter("R", 1, "!=", 7).constant_guard() is None

    def test_atom_constants_guard(self):
        assert AtomUnaryPredicate(Atom("S", (2, Y))).constant_guard() == (0, 2)
        assert AtomUnaryPredicate(Atom("S", (X, Y))).constant_guard() is None
        assert AtomUnaryPredicate(Atom("S", (X, 9))).constant_guard() == (1, 9)

    def test_self_join_unified_constants_guard(self):
        predicate = SelfJoinUnaryPredicate([Atom("R", (2, X)), Atom("R", (Y, X))])
        assert predicate.constant_guard() == (0, 2)

    def test_guard_contract_holds(self):
        # Whenever the predicate accepts a tuple, the guard value matches.
        predicates = [
            AttributeFilter("R", 0, "==", 3),
            AtomUnaryPredicate(Atom("R", (3, Y))),
        ]
        for predicate in predicates:
            position, value = predicate.constant_guard()
            for candidate in [Tuple("R", (3, 1)), Tuple("R", (4, 1)), Tuple("R", ())]:
                if predicate.holds(candidate):
                    assert candidate.value(position) == value

    def test_base_predicates_have_no_guard(self):
        assert TruePredicate().constant_guard() is None
        assert RelationPredicate("T").constant_guard() is None
        assert LambdaUnaryPredicate(lambda t: True).constant_guard() is None
