"""Unit and property tests for bags with identity (repro.cq.bag)."""

from collections import Counter

from hypothesis import given, strategies as st

from repro.cq.bag import Bag, bag_of


class TestBagBasics:
    def test_list_constructor_assigns_positions(self):
        bag = Bag(["a", "a", "b"])
        assert bag.identifiers() == {0, 1, 2}
        assert bag[0] == "a"
        assert bag[2] == "b"

    def test_mapping_constructor_keeps_identifiers(self):
        bag = Bag({"i": "a", "j": "b"})
        assert bag.identifiers() == {"i", "j"}
        assert bag["i"] == "a"

    def test_underlying_set(self):
        assert Bag(["a", "a", "b"]).underlying_set() == {"a", "b"}

    def test_multiplicity(self):
        bag = Bag(["a", "a", "b"])
        assert bag.multiplicity("a") == 2
        assert bag.multiplicity("b") == 1
        assert bag.multiplicity("c") == 0

    def test_membership_and_len(self):
        bag = Bag(["a", "a"])
        assert "a" in bag
        assert "b" not in bag
        assert len(bag) == 2
        assert bool(bag)
        assert not Bag()

    def test_equality_up_to_identifier_renaming(self):
        assert Bag(["a", "a", "b"]) == Bag({"x": "a", "y": "b", "z": "a"})
        assert Bag(["a"]) != Bag(["a", "a"])
        assert hash(Bag(["a", "b"])) == hash(Bag({"u": "b", "v": "a"}))

    def test_containment(self):
        small = Bag(["a", "b"])
        large = Bag(["a", "a", "b"])
        assert small.contained_in(large)
        assert not large.contained_in(small)
        assert large.contained_in(large)

    def test_restrict(self):
        bag = Bag(["a", "b", "a"])
        only_a = bag.restrict(lambda e: e == "a")
        assert only_a == Bag(["a", "a"])
        assert only_a.identifiers() <= bag.identifiers()

    def test_restrict_identifiers(self):
        bag = Bag({"i": "a", "j": "b"})
        assert bag.restrict_identifiers(["i", "missing"]) == Bag(["a"])

    def test_map_keeps_identifiers(self):
        bag = Bag({"i": 1, "j": 2})
        doubled = bag.map(lambda v: v * 2)
        assert doubled["i"] == 2
        assert doubled["j"] == 4

    def test_with_element(self):
        bag = Bag(["a"])
        extended = bag.with_element(5, "b")
        assert extended.multiplicity("b") == 1
        assert bag.multiplicity("b") == 0  # original unchanged

    def test_union_preserves_multiplicities(self):
        left = Bag(["a", "b"])
        right = Bag(["a"])
        combined = left.union(right)
        assert combined.multiplicity("a") == 2
        assert combined.multiplicity("b") == 1

    def test_union_with_clashing_identifiers(self):
        left = Bag({0: "a"})
        right = Bag({0: "b"})
        combined = left.union(right)
        assert combined.counter() == Counter({"a": 1, "b": 1})

    def test_bag_of(self):
        assert bag_of("x", "x") == Bag(["x", "x"])

    def test_get_with_default(self):
        bag = Bag({"i": "a"})
        assert bag.get("i") == "a"
        assert bag.get("missing", "fallback") == "fallback"


class TestBagProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5)))
    def test_counter_matches_multiplicity(self, elements):
        bag = Bag(elements)
        counter = bag.counter()
        for element in set(elements):
            assert counter[element] == bag.multiplicity(element) == elements.count(element)

    @given(st.lists(st.integers(min_value=0, max_value=3)), st.lists(st.integers(min_value=0, max_value=3)))
    def test_union_multiplicities_add(self, left_elements, right_elements):
        left, right = Bag(left_elements), Bag(right_elements)
        combined = left.union(right)
        for element in set(left_elements) | set(right_elements):
            assert combined.multiplicity(element) == (
                left.multiplicity(element) + right.multiplicity(element)
            )

    @given(st.lists(st.integers(min_value=0, max_value=3)))
    def test_equality_invariant_under_shuffled_identifiers(self, elements):
        bag = Bag(elements)
        renamed = Bag({f"k{i}": e for i, e in enumerate(reversed(elements))})
        assert bag == renamed

    @given(st.lists(st.integers(min_value=0, max_value=3)), st.lists(st.integers(min_value=0, max_value=3)))
    def test_containment_is_multiplicity_wise(self, left_elements, right_elements):
        left, right = Bag(left_elements), Bag(right_elements)
        expected = all(
            left.multiplicity(e) <= right.multiplicity(e) for e in set(left_elements)
        )
        assert left.contained_in(right) == expected
