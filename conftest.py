"""Pytest bootstrap: make ``src/`` importable even without installing the package.

``pip install -e .`` is the supported path; this fallback keeps ``pytest``
usable in minimal environments (e.g. offline machines without the ``wheel``
package).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
